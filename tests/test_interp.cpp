// liberty::InterpLibrary tests: anchor validation, piecewise-linear
// synthesis, quarantine union, clamp-with-counter extrapolation,
// compare_libraries error reporting, and the flow's anchored-interpolation
// mode (a dense T-grid must characterize only the anchors).
//
// The unit tests build synthetic anchor libraries whose every quantity is
// linear in T, so a midpoint synthesis must reproduce the directly-built
// midpoint library exactly (piecewise-linear interpolation is exact on
// linear data).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cells/celldef.hpp"
#include "core/error.hpp"
#include "core/flow.hpp"
#include "liberty/interp.hpp"
#include "obs/metrics.hpp"
#include "sweep/sweep.hpp"

namespace cryo::liberty {
namespace {

using charlib::CellChar;
using charlib::Library;
using charlib::NldmArc;
using core::FlowError;

Table2D make_table(double temp, double base, double slope) {
  Table2D t({1e-11, 3e-11, 9e-11}, {1e-15, 4e-15});
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < t.cols(); ++j)
      t.at(i, j) =
          (1.0 + 0.1 * double(i) + 0.01 * double(j)) * (base + slope * temp);
  return t;
}

NldmArc make_arc(const std::string& input, bool input_rise, bool output_rise,
                 double temp) {
  NldmArc arc;
  arc.input = input;
  arc.output = "Z";
  arc.input_rise = input_rise;
  arc.output_rise = output_rise;
  arc.delay = make_table(temp, 5e-12, -1e-14);
  arc.output_slew = make_table(temp, 8e-12, -2e-14);
  arc.energy = make_table(temp, 1e-15, 2e-18);
  return arc;
}

// One INV-like cell plus one sequential cell, every quantity linear in T.
Library make_anchor(double temp) {
  Library lib;
  lib.name = "syn_" + std::to_string(int(temp)) + "k";
  lib.temperature = temp;
  lib.vdd = 0.7;
  lib.slew_grid = {1e-11, 3e-11, 9e-11};
  lib.load_grid = {1e-15, 4e-15};

  CellChar inv;
  inv.def.name = "INV_X1";
  inv.pin_caps = {{"A", 1e-15 + 1e-18 * temp}};
  inv.arcs = {make_arc("A", true, false, temp),
              make_arc("A", false, true, temp)};
  inv.leakage = {{0, 1e-9 + 1e-12 * temp}, {1, 2e-9 + 3e-12 * temp}};
  inv.leakage_avg = 1.5e-9 + 2e-12 * temp;
  lib.cells.push_back(std::move(inv));

  CellChar dff;
  dff.def.name = "DFF_X1";
  dff.def.sequential = true;
  dff.pin_caps = {{"D", 2e-15 + 2e-18 * temp}, {"CLK", 3e-15 + 1e-18 * temp}};
  dff.arcs = {make_arc("CLK", true, true, temp)};
  dff.leakage = {{0, 4e-9 + 2e-12 * temp}};
  dff.leakage_avg = 4e-9 + 2e-12 * temp;
  dff.setup_time = 2e-11 + 1e-14 * temp;
  dff.hold_time = 1e-11 - 5e-15 * temp;
  lib.cells.push_back(std::move(dff));
  return lib;
}

std::vector<std::shared_ptr<const Library>> anchors_at(
    std::initializer_list<double> temps) {
  std::vector<std::shared_ptr<const Library>> anchors;
  for (double t : temps)
    anchors.push_back(std::make_shared<Library>(make_anchor(t)));
  return anchors;
}

// ---- Synthesis ----------------------------------------------------------

TEST(InterpLibrary, MidpointReproducesLinearDataExactly) {
  const InterpLibrary interp(anchors_at({100.0, 300.0}));
  const Library got = interp.at(200.0);
  const Library want = make_anchor(200.0);

  EXPECT_EQ(got.name, "syn_100k_interp");  // default name
  EXPECT_DOUBLE_EQ(got.temperature, 200.0);
  EXPECT_DOUBLE_EQ(got.vdd, 0.7);
  ASSERT_EQ(got.cells.size(), want.cells.size());
  const auto delta = compare_libraries(want, got);
  EXPECT_LT(delta.max_rel, 1e-12) << "worst table: " << delta.worst_table;
  // Spot-check a few raw values against the closed form.
  EXPECT_DOUBLE_EQ(got.cells[0].pin_caps[0].second, 1e-15 + 1e-18 * 200.0);
  EXPECT_DOUBLE_EQ(got.cells[1].setup_time, 2e-11 + 1e-14 * 200.0);
  EXPECT_NEAR(got.cells[0].arcs[0].delay.at(0, 0), 5e-12 - 1e-14 * 200.0,
              1e-24);
}

TEST(InterpLibrary, ThreeAnchorsPickTheBracketingPair) {
  // Piecewise, not global: 50..150 and 150..350 have different slopes when
  // the anchors are not collinear. Perturb the middle anchor so a global
  // fit would be wrong, then check each segment interpolates its own pair.
  auto anchors = anchors_at({50.0, 150.0, 350.0});
  auto middle = make_anchor(150.0);
  middle.cells[0].pin_caps[0].second = 9e-15;  // off the 50/350 line
  anchors[1] = std::make_shared<Library>(std::move(middle));
  const InterpLibrary interp(anchors);

  const double cap50 = 1e-15 + 1e-18 * 50.0;
  const double cap350 = 1e-15 + 1e-18 * 350.0;
  EXPECT_DOUBLE_EQ(interp.at(100.0).cells[0].pin_caps[0].second,
                   0.5 * (cap50 + 9e-15));
  EXPECT_DOUBLE_EQ(interp.at(250.0).cells[0].pin_caps[0].second,
                   0.5 * (9e-15 + cap350));
}

TEST(InterpLibrary, AnchorTemperatureReproducesTheAnchor) {
  const InterpLibrary interp(anchors_at({100.0, 300.0}));
  const Library got = interp.at(300.0, "exact");
  EXPECT_EQ(got.name, "exact");
  const auto delta = compare_libraries(make_anchor(300.0), got);
  EXPECT_EQ(delta.max_rel, 0.0) << "worst table: " << delta.worst_table;

  EXPECT_TRUE(interp.is_anchor(300.0));
  // Wire-format round-trip noise (%.6g) still matches the anchor.
  EXPECT_TRUE(interp.is_anchor(300.0 * (1.0 + 4e-6)));
  EXPECT_FALSE(interp.is_anchor(200.0));
  EXPECT_EQ(interp.anchor_count(), 2u);
  EXPECT_DOUBLE_EQ(interp.vdd(), 0.7);
}

TEST(InterpLibrary, OutsideSpanClampsAndCounts) {
  const InterpLibrary interp(anchors_at({100.0, 300.0}));
  auto& extrapolations = obs::registry().counter("interp.extrapolations");
  const auto before = extrapolations.value();

  const Library cold = interp.at(40.0);
  EXPECT_EQ(extrapolations.value() - before, 1u);
  // Values freeze at the coldest anchor; the recorded temperature stays
  // the requested one.
  EXPECT_DOUBLE_EQ(cold.temperature, 40.0);
  EXPECT_EQ(compare_libraries(make_anchor(100.0), cold).max_rel, 0.0);

  const Library hot = interp.at(400.0);
  EXPECT_EQ(extrapolations.value() - before, 2u);
  EXPECT_EQ(compare_libraries(make_anchor(300.0), hot).max_rel, 0.0);

  // In-span requests do not count.
  (void)interp.at(200.0);
  EXPECT_EQ(extrapolations.value() - before, 2u);
}

// ---- Anchor validation --------------------------------------------------

void expect_interp_error(std::vector<std::shared_ptr<const Library>> anchors,
                         const std::string& needle) {
  try {
    InterpLibrary interp(std::move(anchors));
    FAIL() << "constructor should have thrown (" << needle << ")";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.stage(), "interp");
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(InterpLibrary, RejectsBadAnchorSets) {
  expect_interp_error({}, "empty");
  expect_interp_error(anchors_at({300.0, 100.0}), "ascending");
  expect_interp_error(anchors_at({100.0, 100.0}), "ascending");

  auto mixed_vdd = anchors_at({100.0, 300.0});
  auto v = make_anchor(300.0);
  v.vdd = 0.65;
  mixed_vdd[1] = std::make_shared<Library>(std::move(v));
  expect_interp_error(std::move(mixed_vdd), "vdd");

  auto renamed = anchors_at({100.0, 300.0});
  auto r = make_anchor(300.0);
  r.cells[0].def.name = "BUF_X1";
  renamed[1] = std::make_shared<Library>(std::move(r));
  expect_interp_error(std::move(renamed), "BUF_X1");

  auto missing_pin = anchors_at({100.0, 300.0});
  auto p = make_anchor(300.0);
  p.cells[1].pin_caps.pop_back();
  missing_pin[1] = std::make_shared<Library>(std::move(p));
  expect_interp_error(std::move(missing_pin), "input pins");

  // An arc absent from one anchor WITHOUT a quarantine record is a
  // genuine topology mismatch, not a degraded characterization.
  auto missing_arc = anchors_at({100.0, 300.0});
  auto a = make_anchor(300.0);
  a.cells[0].arcs.pop_back();
  missing_arc[1] = std::make_shared<Library>(std::move(a));
  expect_interp_error(std::move(missing_arc), "missing arc");
}

// ---- Quarantine union ---------------------------------------------------

TEST(InterpLibrary, ArcQuarantinedAtAnyAnchorStaysQuarantined) {
  // Drop INV's A_fall->Z_rise arc from the middle anchor and record the
  // quarantine, charlib-style.
  const std::string label = "INV_X1:A_fall->Z_rise";
  auto anchors = anchors_at({100.0, 200.0, 300.0});
  auto degraded = make_anchor(200.0);
  degraded.cells[0].arcs.pop_back();
  degraded.cells[0].failed_arcs = {label};
  degraded.quarantined_arcs = {label};
  anchors[1] = std::make_shared<Library>(std::move(degraded));

  const InterpLibrary interp(anchors);
  // Even in the 200..300 segment — where BOTH bracketing anchors have the
  // arc — one quarantined anchor poisons the whole temperature axis.
  const Library lib = interp.at(250.0);
  ASSERT_EQ(lib.cells[0].arcs.size(), 1u);
  EXPECT_TRUE(lib.cells[0].arcs[0].input_rise);
  ASSERT_EQ(lib.cells[0].failed_arcs.size(), 1u);
  EXPECT_EQ(lib.cells[0].failed_arcs[0], label);
  ASSERT_EQ(lib.quarantined_arcs.size(), 1u);
  EXPECT_EQ(lib.quarantined_arcs[0], label);
  // The surviving arc still interpolates normally.
  EXPECT_NEAR(lib.cells[0].arcs[0].delay.at(0, 0), 5e-12 - 1e-14 * 250.0,
              1e-24);
}

// ---- compare_libraries --------------------------------------------------

TEST(CompareLibraries, ReportsWorstTableAndCategory) {
  const Library ref = make_anchor(200.0);
  Library cand = make_anchor(200.0);
  // Perturb the largest entry of one delay table by exactly 10%.
  auto& table = cand.cells[0].arcs[1].delay;
  const std::size_t i = table.rows() - 1, j = table.cols() - 1;
  table.at(i, j) *= 1.10;

  const auto delta = compare_libraries(ref, cand);
  EXPECT_NEAR(delta.max_delay_rel, 0.10, 1e-12);
  EXPECT_NEAR(delta.max_rel, 0.10, 1e-12);
  EXPECT_EQ(delta.worst_table, "INV_X1:A_fall->Z_rise:delay");
  EXPECT_DOUBLE_EQ(delta.max_slew_rel, 0.0);
  EXPECT_DOUBLE_EQ(delta.max_energy_rel, 0.0);
  EXPECT_DOUBLE_EQ(delta.max_pin_cap_rel, 0.0);
  // One TableError per NLDM table: 3 arcs x 3 tables.
  EXPECT_EQ(delta.tables.size(), 9u);

  // Mismatched topology is rejected like a bad anchor.
  Library other = make_anchor(200.0);
  other.cells[0].def.name = "NAND2_X1";
  EXPECT_THROW((void)compare_libraries(ref, other), FlowError);
}

// ---- Flow anchored-interpolation mode -----------------------------------

core::FlowConfig tiny_interp_config(const std::string& lib_dir) {
  core::FlowConfig config;
  config.calibrate_devices = false;
  config.lib_dir = lib_dir;
  config.catalog.only_bases = {"INV"};
  config.catalog.drives = {1};
  config.catalog.extra_drives_common = {};
  config.catalog.include_slvt = false;
  config.interp_anchor_temps = {150.0, 300.0};
  return config;
}

TEST(FlowInterp, RejectsBadAnchorConfig) {
  core::FlowConfig single;
  single.interp_anchor_temps = {300.0};
  try {
    core::CryoSocFlow flow(single);
    FAIL() << "single-anchor config should have thrown";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.stage(), "config");
    EXPECT_NE(std::string(e.what()).find("interp_anchor_temps"),
              std::string::npos);
  }
  core::FlowConfig descending;
  descending.interp_anchor_temps = {300.0, 150.0};
  EXPECT_THROW(core::CryoSocFlow{descending}, FlowError);
}

TEST(FlowInterp, DenseSweepCharacterizesOnlyAnchors) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cryosoc_interp_flow";
  fs::remove_all(dir);

  auto config = tiny_interp_config(dir.string());
  config.corner_cache_capacity = 24;  // whole grid resident
  core::CryoSocFlow flow(config);

  auto& runs = obs::registry().counter("charlib.runs");
  const auto runs0 = runs.value();

  // 20-point grid across the anchor span, leakage-only.
  sweep::SweepRequest request;
  for (int i = 0; i < 20; ++i)
    request.corners.push_back(
        flow.corner(150.0 + 150.0 * double(i) / 19.0));
  request.run_timing = false;
  request.run_leakage = true;
  const auto report = sweep::run_sweep(flow, request);

  ASSERT_EQ(report.corners.size(), 20u);
  EXPECT_EQ(report.failed, 0u);
  // The tentpole claim: the whole grid cost exactly the anchor
  // characterizations (endpoints are exact anchors, the rest synthesize).
  EXPECT_EQ(runs.value() - runs0, 2u);

  // Leakage is linear in the interpolated libraries: every intermediate
  // point lies between the anchor endpoints.
  const double l150 = report.corners.front().library_leakage_w;
  const double l300 = report.corners.back().library_leakage_w;
  for (const auto& r : report.corners) {
    EXPECT_GT(r.library_leakage_w, 0.0);
    EXPECT_GE(r.library_leakage_w,
              std::min(l150, l300) * (1.0 - 1e-9));
    EXPECT_LE(r.library_leakage_w,
              std::max(l150, l300) * (1.0 + 1e-9));
  }

  // Read-side only: the store holds exactly the two anchor artifacts.
  std::size_t lib_files = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".lib") ++lib_files;
  EXPECT_EQ(lib_files, 2u);
  fs::remove_all(dir);
}

TEST(FlowInterp, InterpolatedLibraryMatchesDirectCharacterization) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cryosoc_interp_err";
  fs::remove_all(dir);

  // Held-out validation in miniature (bench/interp_accuracy runs the full
  // version): characterize the midpoint directly in a plain flow, then
  // compare the interpolated library against it.
  auto direct_config = tiny_interp_config(dir.string());
  direct_config.interp_anchor_temps.clear();
  core::CryoSocFlow direct(direct_config);
  const auto reference = direct.library(direct.corner(225.0));

  core::CryoSocFlow flow(tiny_interp_config(dir.string()));
  const auto candidate = flow.library(flow.corner(225.0));

  const auto delta = compare_libraries(*reference, *candidate);
  // Delay varies smoothly over 150..300 K; linear interpolation between
  // anchors stays within a few percent of the direct characterization.
  EXPECT_LT(delta.max_delay_rel, 0.05) << "worst: " << delta.worst_table;
  EXPECT_GT(delta.max_rel, 0.0);  // it IS an approximation
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cryo::liberty
