#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "liberty/liberty.hpp"

namespace cryo::liberty {
namespace {

// One shared mini-library characterized once for all round-trip tests.
const charlib::Library& mini_library() {
  static const charlib::Library lib = [] {
    charlib::CharOptions opt;
    opt.temperature = 300.0;
    opt.slews = {2e-12, 8e-12, 32e-12};
    opt.loads = {0.5e-15, 2e-15, 8e-15};
    charlib::Characterizer ch(device::golden_nmos(), device::golden_pmos(),
                              opt);
    cells::CatalogOptions copt;
    copt.only_bases = {"INV", "NAND2", "DFF"};
    copt.drives = {1, 2};
    copt.include_slvt = false;
    return ch.characterize_all(cells::standard_cells(copt), "roundtrip");
  }();
  return lib;
}

TEST(Liberty, WriteProducesWellFormedText) {
  const std::string text = write(mini_library());
  EXPECT_NE(text.find("library (roundtrip)"), std::string::npos);
  EXPECT_NE(text.find("lu_table_template"), std::string::npos);
  EXPECT_NE(text.find("cell (NAND2_X1)"), std::string::npos);
  EXPECT_NE(text.find("cell_leakage_power"), std::string::npos);
  EXPECT_NE(text.find("timing ()"), std::string::npos);
  EXPECT_NE(text.find("setup_rising"), std::string::npos);
}

TEST(Liberty, RoundTripPreservesStructure) {
  const auto& original = mini_library();
  const auto parsed = parse(write(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_DOUBLE_EQ(parsed.temperature, original.temperature);
  EXPECT_DOUBLE_EQ(parsed.vdd, original.vdd);
  ASSERT_EQ(parsed.cells.size(), original.cells.size());
  ASSERT_EQ(parsed.slew_grid.size(), original.slew_grid.size());
  for (std::size_t i = 0; i < parsed.slew_grid.size(); ++i)
    EXPECT_NEAR(parsed.slew_grid[i], original.slew_grid[i], 1e-18);
}

TEST(Liberty, RoundTripPreservesTables) {
  const auto& original = mini_library();
  const auto parsed = parse(write(original));
  for (const auto& cell : original.cells) {
    const auto* back = parsed.find(cell.def.name);
    ASSERT_NE(back, nullptr) << cell.def.name;
    ASSERT_EQ(back->arcs.size(), cell.arcs.size()) << cell.def.name;
    for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
      // Arcs may be reordered by pin grouping; find the matching one.
      const auto& want = cell.arcs[a];
      const charlib::NldmArc* got = nullptr;
      for (const auto& cand : back->arcs) {
        if (cand.input == want.input && cand.output == want.output &&
            cand.input_rise == want.input_rise &&
            cand.output_rise == want.output_rise)
          got = &cand;
      }
      ASSERT_NE(got, nullptr)
          << cell.def.name << " arc " << want.input << "->" << want.output;
      for (std::size_t i = 0; i < want.delay.rows(); ++i) {
        for (std::size_t j = 0; j < want.delay.cols(); ++j) {
          EXPECT_NEAR(got->delay.at(i, j), want.delay.at(i, j),
                      std::abs(want.delay.at(i, j)) * 1e-4 + 1e-16);
          EXPECT_NEAR(got->energy.at(i, j), want.energy.at(i, j),
                      std::abs(want.energy.at(i, j)) * 1e-4 + 1e-18);
        }
      }
    }
  }
}

TEST(Liberty, RoundTripPreservesLeakageAndConstraints) {
  const auto& original = mini_library();
  const auto parsed = parse(write(original));
  for (const auto& cell : original.cells) {
    const auto* back = parsed.find(cell.def.name);
    ASSERT_NE(back, nullptr);
    EXPECT_NEAR(back->leakage_avg, cell.leakage_avg,
                cell.leakage_avg * 1e-4 + 1e-15);
    ASSERT_EQ(back->leakage.size(), cell.leakage.size());
    for (std::size_t i = 0; i < cell.leakage.size(); ++i) {
      EXPECT_EQ(back->leakage[i].pattern, cell.leakage[i].pattern);
      EXPECT_NEAR(back->leakage[i].watts, cell.leakage[i].watts,
                  std::abs(cell.leakage[i].watts) * 1e-4 + 1e-15);
    }
    if (cell.def.sequential && !cell.def.is_latch) {
      EXPECT_NEAR(back->setup_time, cell.setup_time, 1e-15);
      EXPECT_NEAR(back->hold_time, cell.hold_time, 1e-15);
    }
    // Pin caps survive.
    for (const auto& [pin, cap] : cell.pin_caps)
      EXPECT_NEAR(back->pin_cap(pin), cap, cap * 1e-4 + 1e-20);
  }
}

TEST(Liberty, ParseRejectsGarbage) {
  EXPECT_THROW(parse("not a library"), std::runtime_error);
  EXPECT_THROW(parse("library (x) { cell (y) {"), std::runtime_error);
}

TEST(Liberty, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rt.lib";
  write_file(mini_library(), path);
  const auto parsed = read_file(path);
  EXPECT_EQ(parsed.cells.size(), mini_library().cells.size());
  EXPECT_THROW(read_file("/nonexistent/x.lib"), std::runtime_error);
}

}  // namespace
}  // namespace cryo::liberty
