#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cells/celldef.hpp"
#include "netlist/netlist.hpp"
#include "netlist/soc_gen.hpp"

namespace cryo::netlist {
namespace {

TEST(Netlist, NetIdsStable) {
  Netlist nl("t");
  const NetId a = nl.add_net("a");
  EXPECT_EQ(nl.add_net("a"), a);
  EXPECT_NE(nl.add_net("b"), a);
  EXPECT_EQ(nl.net("a"), a);
  EXPECT_TRUE(nl.has_net("a"));
  EXPECT_FALSE(nl.has_net("zz"));
  EXPECT_THROW(nl.net("zz"), std::out_of_range);
  EXPECT_EQ(nl.net_name(a), "a");
}

TEST(Netlist, BusNaming) {
  Netlist nl("t");
  const auto bus = nl.add_bus("d", 4);
  ASSERT_EQ(bus.size(), 4u);
  EXPECT_EQ(nl.net_name(bus[2]), "d[2]");
}

TEST(Netlist, GatePinLookup) {
  Netlist nl("t");
  const NetId a = nl.add_net("a"), y = nl.add_net("y");
  nl.add_gate("g0", "INV_X1", {{"A", a}, {"Y", y}});
  EXPECT_EQ(nl.gates()[0].pin("A"), a);
  EXPECT_EQ(nl.gates()[0].pin("Q"), kNoNet);
}

TEST(Verilog, RoundTripAdder) {
  const auto adder = build_adder(16, 4);
  const auto text = write_verilog(adder);
  const auto back = parse_verilog(text);
  EXPECT_EQ(back.name(), adder.name());
  EXPECT_EQ(back.gates().size(), adder.gates().size());
  EXPECT_EQ(back.net_count(), adder.net_count());
  EXPECT_EQ(back.inputs().size(), adder.inputs().size());
  // Connection structure preserved for a sample gate.
  EXPECT_EQ(back.gates()[3].cell, adder.gates()[3].cell);
  EXPECT_EQ(back.gates()[3].conns.size(), adder.gates()[3].conns.size());
}

TEST(Verilog, ParserRejectsPositional) {
  EXPECT_THROW(parse_verilog("module m (); INV_X1 g (a, b); endmodule"),
               std::runtime_error);
}

// --- Generated block structure ----------------------------------------------

TEST(Blocks, AdderGateCountScales) {
  const auto a32 = build_adder(32, 8);
  const auto a64 = build_adder(64, 8);
  EXPECT_GT(a64.gates().size(), 1.7 * a32.gates().size());
}

TEST(Blocks, ShifterUsesMuxes) {
  const auto sh = build_shifter(64);
  const auto stats = stats_of(sh);
  EXPECT_EQ(stats.by_base.at("MUX2"), 64u * 6u);
}

TEST(Blocks, ComparatorSingleOutput) {
  const auto cmp = build_comparator(24);
  EXPECT_EQ(cmp.outputs().size(), 1u);
  EXPECT_EQ(stats_of(cmp).by_base.at("XNOR2"), 24u);
}

TEST(Blocks, PipelinedMultiplierHasFlops) {
  const auto mul = build_multiplier(16, true);
  EXPECT_GT(stats_of(mul).flops, 16u);
  const auto comb = build_multiplier(16, false);
  EXPECT_EQ(stats_of(comb).flops, 0u);
}

// --- Full SoC ----------------------------------------------------------------

class SocFixture : public ::testing::Test {
 protected:
  static const Netlist& soc() {
    static const Netlist nl = build_soc({});
    return nl;
  }
};

TEST_F(SocFixture, ScaleMatchesRocketClass) {
  const auto stats = stats_of(soc());
  EXPECT_GT(stats.gates, 10000u);
  EXPECT_GT(stats.flops, 2000u);   // regfile + pipeline registers
  EXPECT_GT(stats.by_base.at("FA"), 500u);
  EXPECT_GT(stats.by_base.at("MUX2"), 3000u);
}

TEST_F(SocFixture, SramBudgetMatchesPaper) {
  // Paper: 581 KB total on-chip SRAM (16 + 16 + 512 + tags/state).
  const double kb = static_cast<double>(soc().sram_bits()) / 8192.0;
  EXPECT_NEAR(kb, 581.0, 15.0);
}

TEST_F(SocFixture, EveryNetHasAtMostOneDriver) {
  const auto lib_defs = cells::standard_cells({});
  std::map<std::string, const cells::CellDef*> defs;
  for (const auto& d : lib_defs) defs[d.name] = &d;
  std::map<NetId, int> drivers;
  for (const auto& gate : soc().gates()) {
    const auto* def = defs.at(gate.cell);
    for (const auto& out : def->outputs) {
      const NetId y = gate.pin(out.name);
      if (y != kNoNet) ++drivers[y];
    }
  }
  for (const auto& m : soc().srams())
    for (const NetId n : m.data_out) ++drivers[n];
  for (const auto& [net, count] : drivers)
    EXPECT_LE(count, 1) << soc().net_name(net);
}

TEST_F(SocFixture, AllCellsExistInCatalog) {
  std::set<std::string> names;
  for (const auto& d : cells::standard_cells({})) names.insert(d.name);
  for (const auto& gate : soc().gates())
    EXPECT_TRUE(names.contains(gate.cell)) << gate.cell;
}

TEST_F(SocFixture, MacroInputsAreDriven) {
  // Every SRAM address/din/we net must be driven by a gate output.
  const auto lib_defs = cells::standard_cells({});
  std::map<std::string, const cells::CellDef*> defs;
  for (const auto& d : lib_defs) defs[d.name] = &d;
  std::set<NetId> driven;
  for (const auto& gate : soc().gates()) {
    const auto* def = defs.at(gate.cell);
    for (const auto& out : def->outputs) {
      const NetId y = gate.pin(out.name);
      if (y != kNoNet) driven.insert(y);
    }
  }
  for (const auto& m : soc().srams()) {
    for (const NetId n : m.address)
      EXPECT_TRUE(driven.contains(n)) << m.name << " addr";
    if (m.write_enable != kNoNet) {
      EXPECT_TRUE(driven.contains(m.write_enable)) << m.name << " we";
    }
  }
}

TEST_F(SocFixture, ConfigurableCaches) {
  SocConfig small;
  small.l2_kb = 128;
  const auto nl = build_soc(small);
  EXPECT_LT(nl.sram_bits(), soc().sram_bits());
}

}  // namespace
}  // namespace cryo::netlist
