// Tests of cryo::obs: exact concurrent counters, histogram bucket
// semantics, Chrome-trace span export (valid JSON, balanced B/E pairs),
// the BenchReport schema, the thread-count parsing policy, the artifact
// stale-reason diagnostics, and the guarantee that tracing never changes
// deterministic outputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cells/celldef.hpp"
#include "charlib/characterizer.hpp"
#include "core/artifacts.hpp"
#include "device/finfet.hpp"
#include "device/modelcard.hpp"
#include "exec/exec.hpp"
#include "liberty/liberty.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "spice/engine.hpp"

namespace cryo {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal JSON syntax checker: verifies the text is one well-formed JSON
// value (objects, arrays, strings with escapes, numbers, literals).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

// Scoped environment-variable override; restores the prior value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      saved_ = old;
    }
    if (value)
      setenv(name, value, 1);
    else
      unsetenv(name);
  }
  ~EnvGuard() {
    if (had_)
      setenv(name_.c_str(), saved_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_ = false;
  std::string saved_;
};

TEST(ObsMetrics, ConcurrentCounterSumsExactly) {
  obs::Counter& c = obs::registry().counter("test.concurrent_counter");
  c.reset();
  constexpr std::size_t kTasks = 2000;
  constexpr std::uint64_t kPerTask = 37;
  exec::parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);
}

TEST(ObsMetrics, CounterSameNameSameInstance) {
  obs::Counter& a = obs::registry().counter("test.same_name");
  obs::Counter& b = obs::registry().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(5);
  EXPECT_EQ(b.value(), 5u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  obs::Gauge& g = obs::registry().gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::Histogram& h =
      obs::registry().histogram("test.hist_bounds", {1.0, 10.0, 100.0});
  h.reset();
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow

  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == bound 0 -> bucket 0 (inclusive upper bound)
  h.observe(5.0);    // <= 10      -> bucket 1
  h.observe(10.0);   // == bound 1 -> bucket 1
  h.observe(99.0);   // <= 100     -> bucket 2
  h.observe(1000.0); // past last  -> overflow

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 5.0 + 10.0 + 99.0 + 1000.0, 1e-9);
}

TEST(ObsMetrics, HistogramQuantileInterpolatesExactly) {
  // The quantile estimator is deterministic: walk the cumulative buckets
  // to the target rank q*n, interpolate linearly inside the bucket
  // (bucket 0 spans [0, bounds[0]]), clamp to the tracked max.
  obs::Histogram& h =
      obs::registry().histogram("test.hist_quantile", {10.0});
  h.reset();
  for (const double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.max_value(), 4.0);

  // n=4, all in bucket 0 = [0, 10]: target rank 1 -> frac 0.25 -> 2.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);
  // Rank 2 -> frac 0.5 -> 5.0, clamped to the exact max 4.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(ObsMetrics, HistogramQuantileWalksBucketsAndStaysFinite) {
  obs::Histogram& h =
      obs::registry().histogram("test.hist_quantile_walk", {1.0, 10.0, 100.0});
  h.reset();
  h.observe(0.5);  // bucket 0
  for (const double v : {5.0, 6.0, 7.0}) h.observe(v);  // bucket 1
  h.observe(50.0);    // bucket 2
  h.observe(1000.0);  // overflow

  // n=6; p50 target rank 3: bucket 0 holds 1, bucket 1 reaches 4 >= 3,
  // so interpolate in [1, 10] at frac (3-1)/3 -> exactly 7.0.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  // p95/p99 target ranks live in the overflow bucket: the estimator
  // reports the exact tracked max — finite even for unbounded tails.
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1000.0);
  EXPECT_TRUE(std::isfinite(h.quantile(0.99)));
}

TEST(ObsMetrics, HistogramQuantileEmptyAndReset) {
  obs::Histogram& h =
      obs::registry().histogram("test.hist_quantile_reset", {1.0});
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 0.0);
  h.observe(0.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.25);
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 0.0);
}

TEST(ObsMetrics, SnapshotJsonIsValidAndContainsInstruments) {
  obs::registry().counter("test.snapshot_counter").add(3);
  obs::registry().gauge("test.snapshot_gauge").set(1.25);
  obs::registry().histogram("test.snapshot_hist").observe(0.01);
  const std::string json = obs::registry().snapshot_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("test.snapshot_counter"), std::string::npos);
  EXPECT_NE(json.find("test.snapshot_gauge"), std::string::npos);
  EXPECT_NE(json.find("test.snapshot_hist"), std::string::npos);
}

TEST(ObsMetrics, SparseSymbolicAnalysesScaleWithTopologiesNotIterations) {
  // The sparse MNA core's cost split: the symbolic analysis (pattern +
  // ordering) runs once per circuit topology, while numeric
  // refactorizations run once per NR iteration. An engine re-solved many
  // times must add many iterations and refactorizations but exactly one
  // symbolic analysis.
  auto& symbolic = obs::registry().counter("spice.symbolic_analyses");
  auto& refactors = obs::registry().counter("spice.numeric_refactors");
  auto& iterations = obs::registry().counter("spice.nr_iterations");

  spice::Circuit c;
  device::ModelCard card = device::golden_nmos();
  card.NFIN = 4;
  c.add_vsource("vdd", "vdd", "0", spice::Waveform::dc(0.7));
  c.add_resistor("vdd", "d", 5000.0);
  c.add_mosfet("m1", "d", "d", "0", device::FinFet(card, 300.0));
  spice::Engine engine(c);
  engine.set_solver(spice::LinearSolver::kSparse);

  const auto sym0 = symbolic.value();
  const auto ref0 = refactors.value();
  const auto it0 = iterations.value();
  constexpr int kSolves = 6;
  for (int i = 0; i < kSolves; ++i) engine.dc_operating_point();

  const auto iters = iterations.value() - it0;
  EXPECT_GT(iters, static_cast<std::uint64_t>(2 * kSolves));
  // O(topologies): one analysis for all solves and all their iterations.
  EXPECT_EQ(symbolic.value() - sym0, 1u);
  // Every iteration factors numerically; at most one full factorization
  // per solve discovers the pattern, the rest are refactorizations.
  EXPECT_GE(refactors.value() - ref0, iters - kSolves);
  EXPECT_GT(obs::registry().gauge("spice.fill_nnz").value(), 0.0);

  const std::string json = obs::registry().snapshot_json();
  EXPECT_NE(json.find("spice.symbolic_analyses"), std::string::npos);
  EXPECT_NE(json.find("spice.numeric_refactors"), std::string::npos);
  EXPECT_NE(json.find("spice.fill_nnz"), std::string::npos);
}

TEST(ObsTrace, WritesValidChromeTraceWithBalancedSpans) {
  const fs::path path =
      fs::temp_directory_path() / "cryosoc_test_trace.json";
  std::error_code ec;
  fs::remove(path, ec);

  obs::trace_enable(path.string());
  ASSERT_TRUE(obs::trace_enabled());
  {
    OBS_SPAN("test.outer", "detail");
    OBS_SPAN("test.inner");
  }
  // Spans from worker threads land in per-thread buffers.
  exec::parallel_for(16, [&](std::size_t i) {
    OBS_SPAN("test.task", i % 2 ? "odd" : "even");
  });
  const std::string written = obs::trace_write();
  EXPECT_EQ(written, path.string());
  EXPECT_FALSE(obs::trace_enabled());

  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).valid()) << text.substr(0, 400);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("test.outer:detail"), std::string::npos);
  EXPECT_NE(text.find("test.task"), std::string::npos);

  // Every begin has a matching end (count "ph":"B" vs "ph":"E").
  const auto count_of = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1))
      ++n;
    return n;
  };
  const std::size_t begins = count_of("\"ph\": \"B\"");
  const std::size_t ends = count_of("\"ph\": \"E\"");
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);

  fs::remove(path, ec);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::trace_enabled());
  { OBS_SPAN("test.should_not_appear"); }
  EXPECT_TRUE(obs::trace_write().empty());
}

TEST(ObsReport, BenchReportMatchesSchema) {
  const fs::path dir = fs::temp_directory_path() / "cryosoc_test_bench_out";
  std::error_code ec;
  fs::remove_all(dir, ec);
  EnvGuard guard("CRYOSOC_BENCH_DIR", dir.string().c_str());

  {
    auto report = obs::BenchReport("unit_test");
    report.set_threads(3);
    report.results()["answer"] = 42;
    report.results()["nested"]["pi"] = 3.14;
    report.results()["list"].push_back(1).push_back(2);
    const std::string path = report.write();
    EXPECT_EQ(path, (dir / "BENCH_unit_test.json").string());
  }

  const std::string text = read_file(dir / "BENCH_unit_test.json");
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonChecker(text).valid()) << text.substr(0, 400);
  for (const char* field :
       {"\"schema\"", "cryosoc-bench-v1", "\"bench\"", "unit_test",
        "\"wall_seconds\"", "\"threads\"", "\"hardware_concurrency\"",
        "\"git\"", "\"results\"", "\"answer\"", "\"metrics\""})
    EXPECT_NE(text.find(field), std::string::npos) << field;

  fs::remove_all(dir, ec);
}

TEST(ObsReport, DestructorWritesIfWriteNotCalled) {
  const fs::path dir = fs::temp_directory_path() / "cryosoc_test_bench_dtor";
  std::error_code ec;
  fs::remove_all(dir, ec);
  EnvGuard guard("CRYOSOC_BENCH_DIR", dir.string().c_str());
  {
    auto report = obs::BenchReport("dtor_test");
    report.results()["x"] = 1;
  }
  EXPECT_TRUE(fs::exists(dir / "BENCH_dtor_test.json"));
  fs::remove_all(dir, ec);
}

TEST(ObsExec, ThreadCountParsingPolicy) {
  obs::Gauge& gauge = obs::registry().gauge("exec.thread_count");
  {
    EnvGuard guard("CRYOSOC_THREADS", "3");
    EXPECT_EQ(exec::thread_count(), 3u);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  }
  {
    EnvGuard guard("CRYOSOC_THREADS", "0");
    EXPECT_EQ(exec::thread_count(), 1u);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  {
    // Garbage is rejected (with a warning) and falls back to hardware.
    EnvGuard guard("CRYOSOC_THREADS", "garbage");
    EXPECT_EQ(exec::thread_count(), hw);
    EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(hw));
  }
  {
    EnvGuard guard("CRYOSOC_THREADS", "-2");
    EXPECT_EQ(exec::thread_count(), hw);
  }
  {
    EnvGuard guard("CRYOSOC_THREADS", "12abc");
    EXPECT_EQ(exec::thread_count(), hw);
  }
  // An explicit request always wins over the environment.
  {
    EnvGuard guard("CRYOSOC_THREADS", "5");
    EXPECT_EQ(exec::thread_count(2), 2u);
  }
}

TEST(ObsArtifacts, StaleReasonNamesDivergedField) {
  const fs::path dir = fs::temp_directory_path() / "cryosoc_test_artifacts";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const fs::path lib_path = dir / "unit.lib";

  const auto nmos = device::golden_nmos();
  const auto pmos = device::golden_pmos();
  cells::CatalogOptions cat;
  cat.only_bases = {"INV"};
  cat.drives = {1};

  const core::ArtifactKey old_key =
      core::library_artifact_key(nmos, pmos, cat, 0.7, 300.0);
  std::ofstream(lib_path) << "library (unit) {}\n";
  liberty::write_manifest(lib_path.string(), old_key.manifest());

  // Same configuration: fresh.
  EXPECT_TRUE(core::artifact_fresh(lib_path.string(), old_key));
  EXPECT_TRUE(core::check_artifact(lib_path.string(), old_key).fresh);

  // Supply changed: stale, and the reason names the vdd field.
  const core::ArtifactKey new_key =
      core::library_artifact_key(nmos, pmos, cat, 0.65, 300.0);
  const auto status = core::check_artifact(lib_path.string(), new_key);
  EXPECT_FALSE(status.fresh);
  EXPECT_NE(status.reason.find("vdd"), std::string::npos) << status.reason;

  // Missing file: stale with a "missing" reason.
  const auto missing =
      core::check_artifact((dir / "absent.lib").string(), old_key);
  EXPECT_FALSE(missing.fresh);
  EXPECT_NE(missing.reason.find("missing"), std::string::npos);

  fs::remove_all(dir, ec);
}

// The determinism guarantee behind all of cryo::obs: instrumentation never
// feeds back into computation, so the Liberty text from characterize_all
// is byte-identical at any thread count, with tracing off or on.
TEST(ObsDeterminism, CharacterizationByteIdenticalWithTracing) {
  cells::CatalogOptions cat;
  cat.only_bases = {"INV"};
  cat.drives = {1};
  const auto defs = cells::standard_cells(cat);

  charlib::CharOptions opt;
  opt.temperature = 300.0;
  opt.vdd = 0.7;
  opt.characterize_setup_hold = false;

  const auto run = [&](int threads) {
    charlib::CharOptions o = opt;
    o.threads = threads;
    charlib::Characterizer ch(device::golden_nmos(), device::golden_pmos(),
                              o);
    return liberty::write(ch.characterize_all(defs, "obs_determinism"));
  };

  ASSERT_FALSE(obs::trace_enabled());
  const std::string serial = run(1);
  const std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);

  const fs::path path =
      fs::temp_directory_path() / "cryosoc_test_determinism_trace.json";
  obs::trace_enable(path.string());
  const std::string traced = run(4);
  obs::trace_write();
  EXPECT_EQ(serial, traced);

  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace
}  // namespace cryo
