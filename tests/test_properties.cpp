// Cross-module property sweeps: behaviours that must hold over whole
// parameter ranges rather than at single points.
#include <gtest/gtest.h>

#include <cmath>

#include "charlib/characterizer.hpp"
#include "classify/classifiers.hpp"
#include "common/rng.hpp"
#include "device/finfet.hpp"
#include "qubit/readout.hpp"
#include "riscv/cpu.hpp"
#include "sram/sram.hpp"
#include "sta/sta.hpp"

namespace cryo {
namespace {

// --- Device: monotone temperature trends over the full range ---------------

class TemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureSweep, VthDecreasesWithTemperature) {
  const double t = GetParam();
  const device::FinFet cold(device::golden_nmos(), t);
  const device::FinFet warm(device::golden_nmos(), t + 25.0);
  EXPECT_GT(cold.vth(), warm.vth());
}

TEST_P(TemperatureSweep, SwingNeverBelowBandTailFloor) {
  const double t = GetParam();
  const device::FinFet fet(device::golden_nmos(), t);
  EXPECT_GT(fet.subthreshold_swing(), 0.003);
  // ... and never above the thermal limit times a generous ideality.
  const double teff = std::sqrt(t * t + 27.0 * 27.0);
  EXPECT_LT(fet.subthreshold_swing(), 2.0 * teff * 0.198e-3 + 0.01);
}

TEST_P(TemperatureSweep, SramLeakageMonotoneInTemperature) {
  const double t = GetParam();
  const sram::SramModel cold(device::golden_nmos(), device::golden_pmos(),
                             t);
  const sram::SramModel warm(device::golden_nmos(), device::golden_pmos(),
                             t + 25.0);
  EXPECT_LE(cold.leakage_per_bit(), warm.leakage_per_bit() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Range, TemperatureSweep,
                         ::testing::Values(4.0, 10.0, 50.0, 77.0, 150.0,
                                           250.0),
                         [](const auto& info) {
                           return "T" + std::to_string(
                                            static_cast<int>(info.param));
                         });

// --- Readout: accuracy degrades smoothly with blob overlap -----------------

TEST(ReadoutProperty, AccuracyMonotoneInSeparation) {
  double prev = 0.4;
  for (const double sep : {0.3, 0.6, 1.0, 1.6}) {
    qubit::ReadoutOptions opt;
    opt.blob_separation = sep;
    qubit::ReadoutModel model(16, 77, opt);
    classify::KnnClassifier knn(model.calibration());
    const auto ms = model.sample_all(100);
    const double acc = classify::accuracy(knn, ms);
    EXPECT_GE(acc, prev - 0.03) << "separation " << sep;
    prev = acc;
  }
  EXPECT_GT(prev, 0.97);  // well-separated blobs classify near-perfectly
}

// --- ISS: cycle counts are deterministic and additive ----------------------

TEST(IssProperty, DeterministicCycles) {
  const auto program = riscv::assemble(R"(
    li t0, 500
  loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
  )");
  std::uint64_t first = 0;
  for (int run = 0; run < 3; ++run) {
    riscv::Cpu cpu;
    cpu.load_program(program);
    const auto r = cpu.run(program.base, 1u << 20);
    if (run == 0)
      first = r.cycles;
    else
      EXPECT_EQ(r.cycles, first);
  }
}

TEST(IssProperty, CyclesScaleWithWork) {
  auto cycles_for = [](int n) {
    const auto program = riscv::assemble("li t0, " + std::to_string(n) +
                                         R"(
      loop:
        addi t0, t0, -1
        bnez t0, loop
        ebreak
      )");
    riscv::Cpu cpu;
    cpu.load_program(program);
    cpu.run(program.base, 1u << 22);
    cpu.reset_perf();
    cpu.load_program(program);
    const auto r = cpu.run(program.base, 1u << 22);
    return static_cast<double>(r.cycles);
  };
  const double c1 = cycles_for(1000);
  const double c4 = cycles_for(4000);
  EXPECT_NEAR(c4 / c1, 4.0, 0.1);
}

// --- STA: slew and load sensitivities have the right sign -------------------

class StaSensitivity : public ::testing::Test {
 protected:
  static const charlib::Library& lib() {
    static const charlib::Library l = [] {
      charlib::CharOptions opt;
      opt.temperature = 300.0;
      opt.slews = {2e-12, 8e-12, 32e-12};
      opt.loads = {0.5e-15, 2e-15, 8e-15};
      opt.characterize_setup_hold = false;
      charlib::Characterizer ch(device::golden_nmos(),
                                device::golden_pmos(), opt);
      cells::CatalogOptions copt;
      copt.only_bases = {"INV", "BUF", "NAND2"};
      copt.drives = {1, 4};
      copt.extra_drives_common = {};
      copt.include_slvt = false;
      return ch.characterize_all(cells::standard_cells(copt), "sens");
    }();
    return l;
  }
};

TEST_F(StaSensitivity, SlowInputSlewSlowsTheChain) {
  netlist::Netlist nl("sens");
  const auto a = nl.add_net("a");
  nl.add_input(a);
  netlist::NetId prev = a;
  for (int i = 0; i < 6; ++i) {
    const auto y = nl.add_net("y" + std::to_string(i));
    nl.add_gate("g" + std::to_string(i), "NAND2_X1",
                {{"A", prev}, {"B", prev}, {"Y", y}});
    prev = y;
  }
  nl.add_output(prev);
  const sram::SramModel sm(device::golden_nmos(), device::golden_pmos(),
                           300.0);
  sta::StaOptions fast;
  fast.primary_input_slew = 2e-12;
  sta::StaOptions slow;
  slow.primary_input_slew = 32e-12;
  const double d_fast =
      sta::StaEngine(nl, lib(), sm, fast).run().critical_delay;
  const double d_slow =
      sta::StaEngine(nl, lib(), sm, slow).run().critical_delay;
  EXPECT_GT(d_slow, d_fast);
}

TEST_F(StaSensitivity, HeavierWireModelSlowsTheChain) {
  netlist::Netlist nl("wire");
  const auto a = nl.add_net("a");
  nl.add_input(a);
  netlist::NetId prev = a;
  for (int i = 0; i < 6; ++i) {
    const auto y = nl.add_net("y" + std::to_string(i));
    nl.add_gate("g" + std::to_string(i), "INV_X1", {{"A", prev}, {"Y", y}});
    prev = y;
  }
  nl.add_output(prev);
  const sram::SramModel sm(device::golden_nmos(), device::golden_pmos(),
                           300.0);
  sta::StaOptions light;
  light.wire_cap_per_fanout = 0.2e-15;
  light.wire_delay_per_fanout = 0.5e-12;
  sta::StaOptions heavy;
  heavy.wire_cap_per_fanout = 3e-15;
  heavy.wire_delay_per_fanout = 6e-12;
  const double d_light =
      sta::StaEngine(nl, lib(), sm, light).run().critical_delay;
  const double d_heavy =
      sta::StaEngine(nl, lib(), sm, heavy).run().critical_delay;
  EXPECT_GT(d_heavy, 1.3 * d_light);
}

TEST_F(StaSensitivity, BiggerDriveFasterUnderLoad) {
  const auto& l = lib();
  const auto& x1 = l.at("INV_X1");
  const auto& x4 = l.at("INV_X4");
  EXPECT_LT(x4.worst_delay(8e-12, 8e-15), x1.worst_delay(8e-12, 8e-15));
  // ... at the cost of more input capacitance and leakage.
  EXPECT_GT(x4.pin_cap("A"), x1.pin_cap("A"));
  EXPECT_GT(x4.leakage_avg, x1.leakage_avg);
}

}  // namespace
}  // namespace cryo
