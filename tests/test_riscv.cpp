#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "riscv/cpu.hpp"

namespace cryo::riscv {
namespace {

// --- Encoding ---------------------------------------------------------------

TEST(Encode, GoldenWords) {
  // Reference encodings from the RISC-V specification.
  EXPECT_EQ(encode({Op::kAddi, 1, 0, 0, 5}), 0x00500093u);
  EXPECT_EQ(encode({Op::kAdd, 3, 1, 2, 0}), 0x002081B3u);
  EXPECT_EQ(encode({Op::kLui, 5, 0, 0, 0x12345000}), 0x123452B7u);
  EXPECT_EQ(encode({Op::kLd, 10, 11, 0, 16}), 0x0105B503u);
  EXPECT_EQ(encode({Op::kSd, 0, 2, 8, 24}), 0x00813C23u);
  EXPECT_EQ(encode({Op::kEbreak, 0, 0, 0, 0}), 0x00100073u);
  EXPECT_EQ(encode({Op::kEcall, 0, 0, 0, 0}), 0x00000073u);
  EXPECT_EQ(encode({Op::kMul, 5, 6, 7, 0}), 0x027302B3u);
}

TEST(Encode, RangeChecks) {
  EXPECT_THROW(encode({Op::kAddi, 1, 0, 0, 5000}), std::invalid_argument);
  EXPECT_THROW(encode({Op::kSlli, 1, 1, 0, 70}), std::invalid_argument);
  EXPECT_THROW(encode({Op::kBeq, 0, 1, 2, 3}), std::invalid_argument);
}

TEST(Decode, RoundTripAllOps) {
  Rng rng(17);
  const Op all_ops[] = {
      Op::kLui,  Op::kAuipc, Op::kJal,  Op::kJalr, Op::kBeq,  Op::kBne,
      Op::kBlt,  Op::kBge,   Op::kBltu, Op::kBgeu, Op::kLb,   Op::kLh,
      Op::kLw,   Op::kLd,    Op::kLbu,  Op::kLhu,  Op::kLwu,  Op::kSb,
      Op::kSh,   Op::kSw,    Op::kSd,   Op::kAddi, Op::kSlti, Op::kSltiu,
      Op::kXori, Op::kOri,   Op::kAndi, Op::kSlli, Op::kSrli, Op::kSrai,
      Op::kAddiw, Op::kSlliw, Op::kSrliw, Op::kSraiw, Op::kAdd, Op::kSub,
      Op::kSll,  Op::kSlt,   Op::kSltu, Op::kXor,  Op::kSrl,  Op::kSra,
      Op::kOr,   Op::kAnd,   Op::kAddw, Op::kSubw, Op::kSllw, Op::kSrlw,
      Op::kSraw, Op::kMul,   Op::kMulh, Op::kMulhu, Op::kDiv, Op::kDivu,
      Op::kRem,  Op::kRemu,  Op::kMulw, Op::kDivw, Op::kRemw, Op::kFld,
      Op::kFsd,  Op::kFaddD, Op::kFsubD, Op::kFmulD, Op::kFdivD,
      Op::kFsqrtD, Op::kFeqD, Op::kFltD, Op::kFleD, Op::kFcvtLD,
      Op::kFcvtDL, Op::kFmvXD, Op::kFmvDX, Op::kFsgnjD, Op::kCpop};
  for (const Op op : all_ops) {
    for (int trial = 0; trial < 8; ++trial) {
      Instruction in;
      in.op = op;
      in.rd = static_cast<int>(rng.uniform_int(0, 31));
      in.rs1 = static_cast<int>(rng.uniform_int(0, 31));
      in.rs2 = static_cast<int>(rng.uniform_int(0, 31));
      switch (op) {
        case Op::kLui: case Op::kAuipc:
          in.imm = rng.uniform_int(-512, 511) << 12;
          break;
        case Op::kJal:
          in.imm = rng.uniform_int(-1000, 1000) * 2;
          break;
        case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
        case Op::kBltu: case Op::kBgeu:
          in.imm = rng.uniform_int(-100, 100) * 2;
          break;
        case Op::kSlli: case Op::kSrli: case Op::kSrai:
          in.imm = rng.uniform_int(0, 63);
          break;
        case Op::kSlliw: case Op::kSrliw: case Op::kSraiw:
          in.imm = rng.uniform_int(0, 31);
          break;
        default:
          in.imm = rng.uniform_int(-2048, 2047);
          break;
      }
      const Instruction out = decode(encode(in));
      ASSERT_EQ(out.op, in.op) << static_cast<int>(op);
      const OpClass cls = class_of(op);
      const bool has_rd = cls != OpClass::kBranch && op != Op::kSb &&
                          op != Op::kSh && op != Op::kSw && op != Op::kSd &&
                          op != Op::kFsd && op != Op::kEcall &&
                          op != Op::kEbreak;
      if (has_rd) {
        EXPECT_EQ(out.rd, in.rd);
      }
      const bool has_imm =
          cls == OpClass::kBranch || cls == OpClass::kLoad ||
          cls == OpClass::kStore || op == Op::kAddi || op == Op::kJal ||
          op == Op::kLui || op == Op::kSlli;
      if (has_imm) {
        EXPECT_EQ(out.imm, in.imm) << static_cast<int>(op);
      }
    }
  }
}

// --- Assembler --------------------------------------------------------------

TEST(Assembler, LabelsForwardAndBackward) {
  const auto p = assemble(R"(
    start:
      addi a0, zero, 1
      j end
      addi a0, zero, 2   # skipped
    end:
      ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(cpu.reg(10), 1u);
  EXPECT_EQ(p.symbol("start"), p.base);
  EXPECT_THROW(p.symbol("nope"), std::out_of_range);
}

class LiMaterialization : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LiMaterialization, LoadsExactValue) {
  const auto p = assemble("li a0, " + std::to_string(GetParam()) + "\nebreak");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(static_cast<std::int64_t>(cpu.reg(10)), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, LiMaterialization,
    ::testing::Values(0, 1, -1, 2047, -2048, 2048, 65536, -65536,
                      0x7FFFFFFFll, -0x80000000ll, 0x100000000ll,
                      0x5555555555555555ll, -0x5555555555555555ll,
                      0x7FFFFFFFFFFFFFFFll, 0x0101010101010101ll));

TEST(Assembler, SyntaxErrors) {
  EXPECT_THROW(assemble("frobnicate a0, a1"), std::runtime_error);
  EXPECT_THROW(assemble("addi a0, xx, 1"), std::runtime_error);
  EXPECT_THROW(assemble("addi a0, a1"), std::runtime_error);
  EXPECT_THROW(assemble("j nowhere"), std::runtime_error);
  EXPECT_ANY_THROW(assemble("addi a0, a1, 99999"));
}

TEST(Assembler, DataDirectives) {
  const auto p = assemble(R"(
    j code
    data:
      .dword 0x1122334455667788
    code:
      la t0, data
      ld a0, 0(t0)
      ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(cpu.reg(10), 0x1122334455667788ull);
}

// --- Cache model --------------------------------------------------------------

TEST(Cache, HitAfterMiss) {
  Cache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEviction) {
  // 2-way, 8 sets of 64 B: addresses 0, 1024, 2048 map to set 0.
  Cache c({1024, 2, 64});
  c.access(0);
  c.access(1024);
  c.access(0);      // touch 0 so 1024 becomes LRU
  c.access(2048);   // evicts 1024
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(1024));
}

TEST(Cache, MissRate) {
  Cache c({1024, 2, 64});
  for (int i = 0; i < 10; ++i) c.access(static_cast<std::uint64_t>(i) * 64);
  EXPECT_GT(c.miss_rate(), 0.9);
  c.reset_stats();
  EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, RejectsBadConfig) {
  EXPECT_THROW(Cache({0, 2, 64}), std::invalid_argument);
  EXPECT_THROW(Cache({64, 4, 64}), std::invalid_argument);  // zero sets
}

// --- Execution semantics -------------------------------------------------------

TEST(Cpu, RTypeSemanticsRandomized) {
  Rng rng(23);
  struct Case {
    const char* mnem;
    std::uint64_t (*fn)(std::uint64_t, std::uint64_t);
  };
  const Case cases[] = {
      {"add", [](std::uint64_t a, std::uint64_t b) { return a + b; }},
      {"sub", [](std::uint64_t a, std::uint64_t b) { return a - b; }},
      {"and", [](std::uint64_t a, std::uint64_t b) { return a & b; }},
      {"or", [](std::uint64_t a, std::uint64_t b) { return a | b; }},
      {"xor", [](std::uint64_t a, std::uint64_t b) { return a ^ b; }},
      {"mul", [](std::uint64_t a, std::uint64_t b) { return a * b; }},
      {"sltu",
       [](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
         return a < b ? 1 : 0;
       }},
      {"sll",
       [](std::uint64_t a, std::uint64_t b) { return a << (b & 63); }},
      {"srl",
       [](std::uint64_t a, std::uint64_t b) { return a >> (b & 63); }},
  };
  for (const auto& c : cases) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::uint64_t a = rng.word(), b = rng.word();
      const auto p = assemble(std::string(c.mnem) + " a2, a0, a1\nebreak");
      Cpu cpu;
      cpu.load_program(p);
      cpu.set_reg(10, a);
      cpu.set_reg(11, b);
      cpu.run(p.base, 10);
      EXPECT_EQ(cpu.reg(12), c.fn(a, b)) << c.mnem;
    }
  }
}

TEST(Cpu, LoadStoreAllWidths) {
  const auto p = assemble(R"(
    li t0, 0x20000
    li t1, -2
    sd t1, 0(t0)
    lb a0, 0(t0)
    lbu a1, 0(t0)
    lh a2, 0(t0)
    lhu a3, 0(t0)
    lw a4, 0(t0)
    lwu a5, 0(t0)
    ld a6, 0(t0)
    ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(static_cast<std::int64_t>(cpu.reg(10)), -2);
  EXPECT_EQ(cpu.reg(11), 0xFEu);
  EXPECT_EQ(static_cast<std::int64_t>(cpu.reg(12)), -2);
  EXPECT_EQ(cpu.reg(13), 0xFFFEu);
  EXPECT_EQ(static_cast<std::int64_t>(cpu.reg(14)), -2);
  EXPECT_EQ(cpu.reg(15), 0xFFFFFFFEu);
  EXPECT_EQ(cpu.reg(16), 0xFFFFFFFFFFFFFFFEull);
}

TEST(Cpu, X0IsHardwiredZero) {
  const auto p = assemble("addi x0, x0, 5\nadd a0, x0, x0\nebreak");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 10);
  EXPECT_EQ(cpu.reg(10), 0u);
}

TEST(Cpu, FloatingPointPipeline) {
  const auto p = assemble(R"(
    li t0, 3
    fcvt.d.l fa0, t0
    li t1, 4
    fcvt.d.l fa1, t1
    fmul.d fa2, fa0, fa0
    fmul.d fa3, fa1, fa1
    fadd.d fa4, fa2, fa3
    fsqrt.d fa5, fa4
    fcvt.l.d a0, fa5
    flt.d a1, fa0, fa1
    ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(cpu.reg(10), 5u);  // sqrt(9 + 16)
  EXPECT_EQ(cpu.reg(11), 1u);  // 3 < 4
}

TEST(Cpu, DivisionEdgeCases) {
  const auto p = assemble(R"(
    li a0, 7
    li a1, 0
    div a2, a0, a1
    rem a3, a0, a1
    li a4, -7
    li a5, 2
    div a6, a4, a5
    ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(cpu.reg(12), ~0ull);           // div by zero => -1
  EXPECT_EQ(cpu.reg(13), 7u);              // rem by zero => dividend
  EXPECT_EQ(static_cast<std::int64_t>(cpu.reg(16)), -3);
}

// --- Timing model ---------------------------------------------------------------

TEST(Timing, LoadUseStallsOneCycle) {
  const char* dependent = R"(
    li t0, 0x20000
    ld t1, 0(t0)
    addi t2, t1, 1   # uses the load result immediately
    ebreak
  )";
  const char* independent = R"(
    li t0, 0x20000
    ld t1, 0(t0)
    addi t2, t0, 1   # does not use the load result
    ebreak
  )";
  auto cycles = [](const char* src) {
    const auto p = assemble(src);
    Cpu cpu;
    cpu.load_program(p);
    // Warm run to take cold misses out of the comparison.
    cpu.run(p.base, 100);
    cpu.reset_perf();
    const auto r = cpu.run(p.base, 100);
    return r.cycles;
  };
  EXPECT_EQ(cycles(dependent), cycles(independent) + 1);
}

TEST(Timing, TakenBranchCostsMore) {
  const auto p_taken = assemble("li a0, 1\nbnez a0, t\nnop\nt: ebreak");
  const auto p_not = assemble("li a0, 0\nbnez a0, t\nnop\nt: ebreak");
  auto cycles = [](const Program& p) {
    Cpu cpu;
    cpu.load_program(p);
    cpu.run(p.base, 100);
    cpu.reset_perf();
    return cpu.run(p.base, 100).cycles;
  };
  // Taken: li + bnez(+2) + ebreak = 5; not taken: li + bnez + nop + ebreak.
  EXPECT_EQ(cycles(p_taken), cycles(p_not) + 1);
}

TEST(Timing, DivSlowerThanMul) {
  auto cycles = [](const char* op) {
    const auto p = assemble(std::string("li a0, 100\nli a1, 7\n") + op +
                            " a2, a0, a1\nebreak");
    Cpu cpu;
    cpu.load_program(p);
    cpu.run(p.base, 100);
    cpu.reset_perf();
    return cpu.run(p.base, 100).cycles;
  };
  EXPECT_GT(cycles("div"), cycles("mul") + 5);
}

TEST(Timing, CacheMissesCostCycles) {
  // Stride through 256 KB: misses in L1 (16 KB), mostly hits in L2.
  const auto p = assemble(R"(
    li t0, 0x100000
    li t1, 4096       # lines
  loop:
    ld t2, 0(t0)
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  const auto r = cpu.run(p.base, 1000000);
  EXPECT_GT(cpu.perf().l1d_misses, 4000u);
  EXPECT_GT(static_cast<double>(r.cycles) /
                static_cast<double>(r.instructions),
            2.0);
}

TEST(Timing, PerfCountersClassifyOps) {
  const auto p = assemble(R"(
    li a0, 5
    li a1, 6
    mul a2, a0, a1
    ld a3, 0(zero)
    sd a3, 8(zero)
    beq a0, a0, done
  done:
    ebreak
  )");
  Cpu cpu;
  cpu.load_program(p);
  cpu.run(p.base, 100);
  EXPECT_EQ(cpu.perf().mul_ops, 1u);
  EXPECT_EQ(cpu.perf().loads, 1u);
  EXPECT_EQ(cpu.perf().stores, 1u);
  EXPECT_EQ(cpu.perf().branches, 1u);
  EXPECT_EQ(cpu.perf().taken_branches, 1u);
  EXPECT_GT(cpu.perf().ipc(), 0.0);
}

TEST(Cpu, IllegalInstructionThrows) {
  Cpu cpu;
  cpu.memory().write32(0x10000, 0xFFFFFFFFu);
  EXPECT_THROW(cpu.run(0x10000, 10), std::runtime_error);
}

TEST(Memory, SparseAndWide) {
  Memory m;
  EXPECT_EQ(m.read64(0x123456789ull), 0u);  // untouched = zero
  m.write64(0x123456789ull, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(m.read64(0x123456789ull), 0xDEADBEEFCAFEF00Dull);
  m.write_double(64, 3.25);
  EXPECT_DOUBLE_EQ(m.read_double(64), 3.25);
}

}  // namespace
}  // namespace cryo::riscv
