// cryo::serve tests: wire-format round trips, fingerprint coalescing,
// bounded-queue backpressure, and byte-identity of service responses
// against direct CryoSocFlow calls.
//
// The service tests use a tiny INV-only catalog in a scratch artifact
// store (characterization stays in the millisecond range) and the cheap
// query kinds (leakage / sram / sweep-leakage) that never synthesize the
// SoC; the full-catalog equivalence test loads the committed Liberty
// artifacts like test_flow does.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/flow.hpp"
#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace cryo::serve {
namespace {

namespace fs = std::filesystem;
using core::Corner;
using core::CryoSocFlow;
using core::FlowConfig;
using core::FlowError;

FlowConfig tiny_config(const std::string& lib_dir) {
  FlowConfig config;
  config.calibrate_devices = false;
  config.lib_dir = lib_dir;
  config.catalog.only_bases = {"INV"};
  config.catalog.drives = {1};
  config.catalog.extra_drives_common = {};
  config.catalog.include_slvt = false;
  return config;
}

std::uint64_t counter(const char* name) {
  return obs::registry().counter(name).value();
}

// One richly-populated request per kind, exercising every serialized
// field.
std::vector<FlowRequest> sample_requests() {
  const Corner c{0.7, 77.0, "cold"};
  std::vector<FlowRequest> requests;
  requests.push_back(timing_request(c, "rq-timing"));

  power::ActivityProfile profile;
  profile.clock_frequency = 1.25e9;
  profile.default_activity = 0.05;
  profile.unit_activity = {{"alu", 0.45}, {"pc", 0.3}};
  profile.sram_reads_per_cycle = {{"l1d_data", 0.125}};
  profile.sram_writes_per_cycle = {{"l1d_data", 0.0625}};
  requests.push_back(power_request(c, profile, "rq-power"));

  FlowRequest measured;
  measured.kind = QueryKind::kMeasuredPower;
  measured.id = "rq-measured";
  measured.corner = c;
  measured.activity.clock_frequency = 2e9;
  measured.activity.cycles = 1000;
  measured.activity.events = 4321;
  measured.activity.glitches = 17;
  measured.activity.net_toggles = {5, 0, 12};
  measured.activity.net_glitches = {1, 0, 0};
  measured.activity.sram_reads_per_cycle = {{"l1i_tags", 0.5}};
  requests.push_back(measured);

  requests.push_back(leakage_request(c, "rq-leak"));
  requests.push_back(sram_request(c, {256, 32}, "rq-sram"));

  SweepQuery sweep;
  sweep.corners = {Corner::room(), Corner::cryo()};
  sweep.run_timing = false;
  sweep.run_leakage = true;
  sweep.run_feasibility = true;
  sweep.cycles_per_classification = 1500.0;
  sweep.qubits = 27;
  sweep.profile = profile;
  requests.push_back(sweep_request(sweep, "rq-sweep"));
  return requests;
}

// ---- Wire format ---------------------------------------------------------

TEST(ServeWire, RequestRoundTripsByteIdenticallyForEveryKind) {
  for (const FlowRequest& request : sample_requests()) {
    const std::string wire = to_json(request).dump(0);
    const FlowRequest parsed = parse_request(wire);
    EXPECT_EQ(to_json(parsed).dump(0), wire) << kind_name(request.kind);
    EXPECT_EQ(parsed.id, request.id);
    EXPECT_EQ(request_fingerprint(parsed), request_fingerprint(request))
        << kind_name(request.kind);
  }
}

TEST(ServeWire, FingerprintIgnoresIdButTracksPayload) {
  const Corner c{0.7, 10.0, ""};
  FlowRequest a = leakage_request(c, "client-1");
  FlowRequest b = leakage_request(c, "client-2");
  EXPECT_EQ(request_fingerprint(a), request_fingerprint(b));

  FlowRequest other_kind = timing_request(c);
  EXPECT_NE(request_fingerprint(a), request_fingerprint(other_kind));
  FlowRequest other_corner = leakage_request(Corner{0.7, 10.5, ""});
  EXPECT_NE(request_fingerprint(a), request_fingerprint(other_corner));
}

TEST(ServeWire, ParseRejectsMalformedRequests) {
  const auto stage_of = [](const std::string& text) {
    try {
      parse_request(text);
      return std::string("no-throw");
    } catch (const FlowError& e) {
      return e.stage();
    }
  };
  EXPECT_EQ(stage_of("{not json"), "request-parse");
  EXPECT_EQ(stage_of("[1,2,3]"), "request-parse");
  EXPECT_EQ(stage_of("{\"schema\":\"wrong-v9\",\"kind\":\"timing\"}"),
            "request-parse");
  EXPECT_EQ(stage_of("{\"schema\":\"cryosoc-req-v1\",\"kind\":\"bogus\"}"),
            "request-parse");
  // Right schema and kind but a missing corner.
  EXPECT_EQ(stage_of("{\"schema\":\"cryosoc-req-v1\",\"kind\":\"timing\"}"),
            "request-parse");
}

TEST(ServeWire, ResponseRoundTripsByteIdenticallyForEveryKind) {
  // Hand-built responses covering every result member, including an
  // error response and optional sweep verdicts.
  std::vector<FlowResponse> responses;
  {
    FlowResponse r;
    r.kind = QueryKind::kTiming;
    r.ok = true;
    r.corner = {0.7, 300.0, "300k"};
    sta::TimingReport t;
    t.critical_delay = 7.25e-10;
    t.fmax = 1.0 / t.critical_delay;
    t.worst_hold_slack = 1.5e-11;
    t.has_hold_endpoints = true;
    t.endpoint_count = 321;
    t.critical_endpoint = "mem_wb_r17_b3";
    t.critical_path = {{"alu_x", "NAND2_X2", "A1", 1.25e-11, 5.5e-11}};
    r.timing = t;
    responses.push_back(r);
  }
  {
    FlowResponse r;
    r.kind = QueryKind::kPower;
    r.ok = true;
    r.corner = {0.65, 10.0, "10k"};
    power::PowerReport p;
    p.dynamic_logic = 0.011;
    p.dynamic_sram = 0.002;
    p.dynamic_glitch = 0.0005;
    p.leakage_logic = 1e-5;
    p.leakage_sram = 3e-6;
    r.power = p;
    responses.push_back(r);
  }
  {
    FlowResponse r;
    r.kind = QueryKind::kLeakage;
    r.ok = true;
    r.corner = {0.7, 10.0, ""};
    r.library_leakage_w = 4.25e-7;
    responses.push_back(r);
  }
  {
    FlowResponse r;
    r.kind = QueryKind::kSram;
    r.ok = true;
    r.corner = {0.7, 300.0, ""};
    SramResult s;
    s.macro = {512, 64};
    s.timing = {2.5e-10, 3e-11, 4e-10};
    s.power = {1e-4, 2e-13, 3e-13};
    s.leakage_per_bit_w = 3e-9;
    s.reference_gate_delay_s = 6e-12;
    r.sram = s;
    responses.push_back(r);
  }
  {
    FlowResponse r;
    r.kind = QueryKind::kSweep;
    r.ok = true;
    SweepOutcome o;
    SweepCornerResult ok_corner;
    ok_corner.corner = {0.7, 300.0, "300k"};
    ok_corner.ok = true;
    ok_corner.library_leakage_w = 2e-4;
    ok_corner.fits_cooling_budget = false;
    ok_corner.meets_deadline = true;
    SweepCornerResult bad_corner;
    bad_corner.corner = {0.7, 10.0, "10k"};
    bad_corner.ok = false;
    bad_corner.error_stage = "quarantine";
    bad_corner.error = "library has 1 quarantined arc(s)";
    o.corners = {ok_corner, bad_corner};
    o.failed = 1;
    o.worst_corner = 0;
    o.fmax_vs_temperature = {{10.0, 1.1e9}, {300.0, 1.2e9}};
    o.cooling_crossover_k = 47.5;
    o.cooling_verdict = CoolingVerdict::kCrossover;
    r.sweep = o;
    responses.push_back(r);
  }
  {
    // A sweep where even the coldest corner exceeds the budget: the
    // verdict (not an unset optional) carries the distinction.
    FlowResponse r;
    r.kind = QueryKind::kSweep;
    r.ok = true;
    SweepOutcome o;
    SweepCornerResult c;
    c.corner = {0.7, 10.0, "10k"};
    c.ok = true;
    c.fits_cooling_budget = false;
    o.corners = {c};
    o.cooling_verdict = CoolingVerdict::kInfeasibleEverywhere;
    r.sweep = o;
    responses.push_back(r);
  }
  {
    FlowResponse r;
    r.kind = QueryKind::kMeasuredPower;
    r.ok = false;
    r.corner = {0.7, 4.0, ""};
    r.error_stage = "characterize";
    r.error = "[flow:characterize] SPICE diverged";
    responses.push_back(r);
  }

  for (FlowResponse& response : responses) {
    response.meta.id = "resp-id";
    response.meta.sequence = 42;
    response.meta.coalesced = 3;
    response.meta.queue_seconds = 0.001953125;  // dyadic: exact in JSON
    response.meta.service_seconds = 0.25;
    response.meta.kind_latency = {7, 0.125, 0.5, 0.75};
    const std::string wire = to_json(response).dump(0);
    const FlowResponse parsed = parse_response(wire);
    EXPECT_EQ(to_json(parsed).dump(0), wire) << kind_name(response.kind);
    EXPECT_EQ(parsed.meta.sequence, 42u);
    EXPECT_EQ(parsed.meta.kind_latency.count, 7u);
  }
}

TEST(ServeWire, JsonParserHandlesEscapesAndRejectsGarbage) {
  const JsonValue v =
      json_parse("{\"a\\n\": [1, -2.5e3, \"\\u0041\"], \"b\": null}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* arr = v.find("a\n");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->items[0].as_number("n"), 1.0);
  EXPECT_DOUBLE_EQ(arr->items[1].as_number("n"), -2500.0);
  EXPECT_EQ(arr->items[2].as_string("s"), "A");
  EXPECT_TRUE(v.at("b", "doc").is_null());

  EXPECT_THROW(json_parse("{\"a\":1} trailing"), FlowError);
  EXPECT_THROW(json_parse("{\"a\":}"), FlowError);
  EXPECT_THROW(json_parse(""), FlowError);
  EXPECT_THROW(json_parse("{\"a\":01x}"), FlowError);
}

// ---- Service: coalescing storm ------------------------------------------

TEST(ServeService, ConcurrentSameCornerStormCoalescesToOneExecution) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_storm";
  fs::remove_all(dir);
  CryoSocFlow flow(tiny_config(dir.string()));

  // Gate the worker so every one of the 32 submissions lands while the
  // first is still in flight: the coalescing then has to be exact.
  std::promise<void> all_submitted;
  std::shared_future<void> gate = all_submitted.get_future().share();
  ServiceConfig config;
  config.workers = 2;
  config.before_execute = [gate](const FlowRequest&) { gate.wait(); };

  const std::uint64_t runs0 = counter("charlib.runs");
  const std::uint64_t executed0 = counter("serve.executed");
  const std::uint64_t coalesced0 = counter("serve.coalesced");

  const Corner storm_corner{0.7, 150.0, ""};  // uncached: must characterize
  std::vector<std::shared_future<FlowResponse>> futures;
  {
    FlowService service(flow, config);
    for (int i = 0; i < 32; ++i)
      futures.push_back(service.submit(
          leakage_request(storm_corner, "storm-" + std::to_string(i))));
    all_submitted.set_value();
    for (auto& f : futures) f.wait();
  }

  // Exactly one execution and one characterization; the other 31 joined.
  EXPECT_EQ(counter("serve.executed") - executed0, 1u);
  EXPECT_EQ(counter("serve.coalesced") - coalesced0, 31u);
  EXPECT_EQ(counter("charlib.runs") - runs0, 1u);

  // Every storm response is byte-identical to a direct flow call against
  // the same corner state. (A *fresh* flow would reload the Liberty
  // artifact, whose %.6g rendering rounds low-order bits — cold vs warm
  // equality is the artifact format's contract, not the service's.)
  const FlowResponse direct = execute(flow, leakage_request(storm_corner));
  ASSERT_TRUE(direct.ok) << direct.error;
  const std::string expected = response_payload_json(direct).dump(0);
  for (const auto& f : futures) {
    const FlowResponse& response = f.get();
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response_payload_json(response).dump(0), expected);
    EXPECT_EQ(response.meta.coalesced, 31u);
    EXPECT_GE(response.meta.kind_latency.count, 1u);
  }
  fs::remove_all(dir);
}

// ---- Service: backpressure ----------------------------------------------

TEST(ServeService, BoundedQueueRejectsOverloadWithAdmissionError) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_overload";
  fs::remove_all(dir);
  CryoSocFlow flow(tiny_config(dir.string()));

  std::promise<void> picked_up;
  std::promise<void> release;
  std::shared_future<void> release_gate = release.get_future().share();
  std::atomic<bool> first{true};
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.before_execute = [&](const FlowRequest&) {
    if (first.exchange(false)) picked_up.set_value();
    release_gate.wait();
  };

  const std::uint64_t rejected0 = counter("serve.rejected");
  FlowService service(flow, config);

  // sram queries don't characterize: distinct temperatures give distinct
  // fingerprints, so nothing coalesces.
  const auto request_at = [](double t) {
    return sram_request(Corner{0.7, t, ""}, {64, 8});
  };
  std::vector<std::shared_future<FlowResponse>> futures;
  futures.push_back(service.submit(request_at(301.0)));
  picked_up.get_future().wait();  // worker holds it; the queue is empty

  futures.push_back(service.submit(request_at(302.0)));
  futures.push_back(service.submit(request_at(303.0)));  // queue now full
  try {
    service.submit(request_at(304.0));
    FAIL() << "expected FlowError{admission}";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.stage(), "admission");
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }
  EXPECT_EQ(counter("serve.rejected") - rejected0, 1u);

  release.set_value();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);

  // Draining freed capacity: the same query is admitted now.
  EXPECT_TRUE(service.call(request_at(304.0)).ok);
  fs::remove_all(dir);
}

TEST(ServeService, RejectsZeroQueueCapacity) {
  CryoSocFlow flow(tiny_config("lib"));
  ServiceConfig config;
  config.queue_capacity = 0;
  try {
    FlowService service(flow, config);
    FAIL() << "expected FlowError{config}";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.stage(), "config");
  }
}

// ---- Service: byte-identity vs the direct flow ---------------------------

TEST(ServeService, ResponsesMatchDirectFlowAtAnyWorkerCount) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_identity";
  fs::remove_all(dir);

  // Direct reference: execute() straight on a flow, no service.
  std::vector<FlowRequest> requests;
  requests.push_back(leakage_request(Corner{0.7, 300.0, ""}));
  requests.push_back(leakage_request(Corner{0.7, 10.0, ""}));
  requests.push_back(sram_request(Corner{0.7, 10.0, ""}, {512, 64}));
  requests.push_back(sram_request(Corner{0.7, 300.0, ""}, {1024, 32}));
  SweepQuery sweep;
  sweep.corners = {Corner{0.7, 300.0, ""}, Corner{0.7, 10.0, ""},
                   Corner{0.7, 77.0, ""}};
  sweep.run_timing = false;
  sweep.run_leakage = true;
  requests.push_back(sweep_request(sweep));

  // Warm the scratch artifact store first so the reference flow and every
  // service flow all load the same on-disk Liberty artifacts (a cold flow
  // would answer from the unrounded in-memory characterization).
  {
    CryoSocFlow warmup(tiny_config(dir.string()));
    for (const FlowRequest& request : requests) execute(warmup, request);
  }
  std::vector<std::string> expected;
  {
    CryoSocFlow flow(tiny_config(dir.string()));
    for (const FlowRequest& request : requests)
      expected.push_back(response_payload_json(execute(flow, request)).dump(0));
  }

  for (const int workers : {1, 4}) {
    CryoSocFlow flow(tiny_config(dir.string()));
    ServiceConfig config;
    config.workers = workers;
    FlowService service(flow, config);
    std::vector<std::shared_future<FlowResponse>> futures;
    for (const FlowRequest& request : requests)
      futures.push_back(service.submit(request));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const FlowResponse& response = futures[i].get();
      EXPECT_TRUE(response.ok) << response.error;
      EXPECT_EQ(response_payload_json(response).dump(0), expected[i])
          << "workers=" << workers << " request " << i;
    }
  }
  fs::remove_all(dir);
}

TEST(ServeService, FullCatalogTimingMatchesDirectFlow) {
  // The committed artifacts make this cheap enough: one timing and one
  // fmax-power query through the service must be byte-identical to the
  // direct corner-keyed calls.
  FlowConfig config;
  config.calibrate_devices = false;

  CryoSocFlow direct_flow(config);
  const Corner c300 = direct_flow.corner(300.0);
  const FlowRequest timing_req = timing_request(c300);
  power::ActivityProfile profile;
  profile.clock_frequency = 0.0;  // run at the corner's own fmax
  profile.default_activity = 0.1;
  const FlowRequest power_req = power_request(c300, profile);

  const std::string timing_expected =
      response_payload_json(execute(direct_flow, timing_req)).dump(0);
  const std::string power_expected =
      response_payload_json(execute(direct_flow, power_req)).dump(0);

  CryoSocFlow service_flow(config);
  FlowService service(service_flow);
  EXPECT_EQ(response_payload_json(service.call(timing_req)).dump(0),
            timing_expected);
  EXPECT_EQ(response_payload_json(service.call(power_req)).dump(0),
            power_expected);
}

// ---- Service: failures become responses ----------------------------------

TEST(ServeService, AnalysisFailureIsAnOkFalseResponseNotACrash) {
  const fs::path dir = fs::path(::testing::TempDir()) / "serve_badsweep";
  fs::remove_all(dir);
  CryoSocFlow flow(tiny_config(dir.string()));
  FlowService service(flow);

  // An empty sweep grid is a programmer error inside run_sweep; the
  // service turns it into a structured ok=false response.
  const FlowResponse response = service.call(sweep_request(SweepQuery{}));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_stage, "analysis");
  EXPECT_NE(response.error.find("empty corner grid"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cryo::serve
