#include <gtest/gtest.h>

#include <cmath>

#include "device/modelcard.hpp"
#include "spice/engine.hpp"

namespace cryo::spice {
namespace {

TEST(Waveform, DcAndRamp) {
  const auto dc = Waveform::dc(0.7);
  EXPECT_DOUBLE_EQ(dc.value(0.0), 0.7);
  EXPECT_DOUBLE_EQ(dc.value(1.0), 0.7);
  const auto ramp = Waveform::ramp(0.0, 1.0, 1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(ramp.value(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(ramp.value(2e-9), 0.5);
  EXPECT_DOUBLE_EQ(ramp.value(5e-9), 1.0);
}

TEST(Waveform, Breakpoints) {
  const auto ramp = Waveform::ramp(0.0, 1.0, 1e-9, 2e-9);
  EXPECT_NEAR(ramp.next_breakpoint(0.0), 1e-9, 1e-15);
  EXPECT_NEAR(ramp.next_breakpoint(1.5e-9), 3e-9, 1e-15);
  EXPECT_TRUE(std::isinf(ramp.next_breakpoint(10e-9)));
}

TEST(Waveform, PulseRepeats) {
  const auto clk = Waveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.1e-9,
                                   0.9e-9, 2e-9);
  EXPECT_DOUBLE_EQ(clk.value(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(clk.value(1.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(clk.value(3.5e-9), 1.0);  // second period
  EXPECT_DOUBLE_EQ(clk.value(2.5e-9), 0.0);
}

TEST(Waveform, PulseRejectsPeriodShorterThanShape) {
  // One period must fit rise + width + fall; a shorter period would fold
  // the shape onto itself and silently distort every cycle after the
  // first.
  EXPECT_THROW(Waveform::pulse(0.0, 1.0, 0.0, 0.3e-9, 0.3e-9, 0.5e-9,
                               1.0e-9),
               std::invalid_argument);
  // The degenerate exact fit is legal: the waveform toggles continuously.
  EXPECT_NO_THROW(Waveform::pulse(0.0, 1.0, 0.0, 0.3e-9, 0.3e-9, 0.5e-9,
                                  1.1e-9));
}

TEST(Waveform, PulseExactPeriodMultiples) {
  // Sampling exactly on period multiples (and on corners shifted by whole
  // periods) must reproduce the first period's values with no drift: the
  // fold-back arithmetic may not accumulate error across cycles.
  const double delay = 1e-9, rise = 0.1e-9, fall = 0.1e-9;
  const double width = 0.9e-9, period = 2e-9;
  const auto clk = Waveform::pulse(0.0, 1.0, delay, rise, fall, width,
                                   period);
  for (int k = 0; k < 5; ++k) {
    const double t0 = k * period;
    EXPECT_DOUBLE_EQ(clk.value(t0 + delay), 0.0) << "k=" << k;
    EXPECT_DOUBLE_EQ(clk.value(t0 + delay + rise), 1.0) << "k=" << k;
    EXPECT_DOUBLE_EQ(clk.value(t0 + delay + rise + width), 1.0)
        << "k=" << k;
    EXPECT_DOUBLE_EQ(clk.value(t0 + delay + rise + width + fall), 0.0)
        << "k=" << k;
    // Mid-ramp, shifted by whole periods: off-corner samples keep the
    // fold-back's ulp(t) error, scaled by the ramp slope.
    EXPECT_NEAR(clk.value(t0 + delay + 0.5 * rise), 0.5, 1e-12)
        << "k=" << k;
  }
}

TEST(Trace, CrossAndTransition) {
  Trace t;
  t.time = {0.0, 1.0, 2.0, 3.0};
  t.value = {0.0, 0.0, 1.0, 1.0};
  EXPECT_NEAR(t.cross(0.5, true), 1.5, 1e-12);
  EXPECT_LT(t.cross(0.5, false), 0.0);
  EXPECT_NEAR(t.transition_time(0.0, 1.0, 0.1, 0.9), 0.8, 1e-9);
  EXPECT_NEAR(t.at(1.5), 0.5, 1e-12);
  EXPECT_NEAR(t.integral(), 1.5, 1e-12);
}

TEST(Trace, CrossHandlesExactThresholdSample) {
  // A fast-slew trace whose first sample sits exactly on the 10 % level:
  // the half-open crossing semantics must report t = 0, not miss it (the
  // old strict predicate returned -1 and transition_time broke).
  Trace t;
  t.time = {0.0, 1.0, 2.0};
  t.value = {0.1, 0.5, 0.9};
  EXPECT_NEAR(t.cross(0.1, true), 0.0, 1e-12);
  EXPECT_NEAR(t.cross(0.9, true), 2.0, 1e-12);
  EXPECT_NEAR(t.transition_time(0.0, 1.0, 0.1, 0.9), 2.0, 1e-12);
  // Falling direction, exact landing on the level.
  Trace f;
  f.time = {0.0, 1.0, 2.0};
  f.value = {0.9, 0.5, 0.1};
  EXPECT_NEAR(f.cross(0.9, false), 0.0, 1e-12);
  EXPECT_NEAR(f.cross(0.1, false), 2.0, 1e-12);
  // A flat trace pinned at the level never "crosses" it.
  Trace flat;
  flat.time = {0.0, 1.0};
  flat.value = {0.5, 0.5};
  EXPECT_LT(flat.cross(0.5, true), 0.0);
  EXPECT_LT(flat.cross(0.5, false), 0.0);
}

TEST(LuSolve, KnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  std::vector<double> a = {2, 1, 1, 3};
  std::vector<double> b = {5, 10};
  ASSERT_TRUE(lu_solve(a, b, 2));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  std::vector<double> a = {1, 2, 2, 4};
  std::vector<double> b = {1, 2};
  EXPECT_FALSE(lu_solve(a, b, 2));
}

TEST(Circuit, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("vss"), kGround);
  EXPECT_NE(c.node("a"), kGround);
  EXPECT_EQ(c.node("a"), c.node("a"));
}

TEST(Circuit, RejectsBadElements) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("a", "b", 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor("a", "b", -1e-15), std::invalid_argument);
}

TEST(Dc, ResistorDivider) {
  Circuit c;
  c.add_vsource("v1", "in", "0", Waveform::dc(1.0));
  c.add_resistor("in", "mid", 1000.0);
  c.add_resistor("mid", "0", 3000.0);
  Engine engine(c);
  const auto x = engine.dc_operating_point();
  EXPECT_NEAR(x[c.node("mid") - 1], 0.75, 1e-6);
  // Source branch current: 1 V / 4 kOhm flowing out of the + terminal.
  EXPECT_NEAR(x[c.node_count()], -0.25e-3, 1e-8);
}

TEST(Tran, RcStepResponse) {
  Circuit c;
  c.add_vsource("v1", "in", "0", Waveform::ramp(0.0, 1.0, 0.0, 1e-15));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);  // tau = 1 ns
  Engine engine(c);
  TranOptions opt;
  opt.t_stop = 4e-9;
  opt.dt_max = 20e-12;
  const auto result = engine.transient(opt);
  const auto out = result.node("out");
  for (double t : {0.5e-9, 1e-9, 2e-9, 3e-9}) {
    const double expected = 1.0 - std::exp(-t / 1e-9);
    EXPECT_NEAR(out.at(t), expected, 0.01) << "t=" << t;
  }
}

TEST(Tran, CapacitiveDividerConservesCharge) {
  // Series caps: step splits by inverse capacitance ratio.
  Circuit c;
  c.add_vsource("v1", "in", "0",
                Waveform::ramp(0.0, 1.0, 100e-12, 10e-12));
  c.add_capacitor("in", "mid", 2e-15);
  c.add_capacitor("mid", "0", 6e-15);
  Engine engine(c);
  TranOptions opt;
  opt.t_stop = 500e-12;
  const auto result = engine.transient(opt);
  EXPECT_NEAR(result.node("mid").value.back(), 0.25, 0.02);
}

class InverterFixture : public ::testing::Test {
 protected:
  Circuit make(double temperature, double load_f) {
    device::ModelCard n = device::golden_nmos();
    n.NFIN = 2;
    device::ModelCard p = device::golden_pmos();
    p.NFIN = 3;
    Circuit c;
    c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
    c.add_vsource("vin", "in", "0",
                  Waveform::ramp(0.0, 0.7, 50e-12, 10e-12));
    c.add_mosfet("mp", "out", "in", "vdd", device::FinFet(p, temperature));
    c.add_mosfet("mn", "out", "in", "0", device::FinFet(n, temperature));
    c.add_capacitor("out", "0", load_f);
    return c;
  }
};

TEST_F(InverterFixture, OutputRailsCorrect) {
  auto c = make(300.0, 1e-15);
  Engine engine(c);
  const auto x = engine.dc_operating_point();
  EXPECT_GT(x[c.node("out") - 1], 0.68);  // input low -> output high
}

TEST_F(InverterFixture, DelayGrowsWithLoad) {
  double prev_delay = 0.0;
  for (double load : {0.5e-15, 2e-15, 8e-15}) {
    auto c = make(300.0, load);
    Engine engine(c);
    TranOptions opt;
    opt.t_stop = 400e-12;
    opt.dt_max = 2e-12;
    const auto result = engine.transient(opt);
    const double t_in = result.node("in").cross(0.35, true);
    const double t_out = result.node("out").cross(0.35, false, 0.0);
    const double delay = t_out - t_in;
    EXPECT_GT(delay, prev_delay);
    prev_delay = delay;
  }
}

TEST_F(InverterFixture, LeakageCollapsesAtCryo) {
  auto c300 = make(300.0, 1e-15);
  auto c10 = make(10.0, 1e-15);
  Engine e300(c300), e10(c10);
  const double i300 = std::abs(e300.dc_operating_point()[c300.node_count()]);
  const double i10 = std::abs(e10.dc_operating_point()[c10.node_count()]);
  EXPECT_GT(i300 / i10, 30.0);
}

TEST(Dc, SeriesStackConverges) {
  // Three stacked PMOS (the NOR3 pull-up shape that once limit-cycled).
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 9;
  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
  c.add_mosfet("m1", "y", "0", "n1", device::FinFet(p, 300.0));
  c.add_mosfet("m2", "n1", "0", "n2", device::FinFet(p, 300.0));
  c.add_mosfet("m3", "n2", "0", "vdd", device::FinFet(p, 300.0));
  device::ModelCard n = device::golden_nmos();
  n.NFIN = 2;
  c.add_mosfet("m4", "y", "0", "0", device::FinFet(n, 300.0));
  Engine engine(c);
  const auto x = engine.dc_operating_point();
  EXPECT_GT(x[c.node("y") - 1], 0.65);
}

TEST(Tran, BreakpointClippingDoesNotCollapseTimestep) {
  // Regression for the step-control feedback bug: clipping a step to land
  // on a source breakpoint used to write the clipped dt back into the
  // controller, so a stimulus with dense breakpoints collapsed the
  // nominal step and the run crawled back up at 1.5x per accepted step.
  // The aux source here is a held-level pulse: electrically inert, but it
  // emits a pair of corners 10 fs apart every 20 ps — the breakpoint
  // pattern vector-driven decks produce for held pins. Step counts with
  // and without it must now be within noise of each other.
  const auto steps = [](bool dense_breakpoints, bool seed_controller) {
    Circuit c;
    c.add_vsource("vin", "in", "0",
                  Waveform::pulse(0.0, 1.0, 20e-12, 50e-12, 50e-12,
                                  200e-12, 600e-12));
    c.add_resistor("in", "out", 10000.0);
    c.add_capacitor("out", "0", 2e-15);
    if (dense_breakpoints)
      c.add_vsource("aux", "auxn", "0",
                    Waveform::pulse(0.7, 0.7, 1e-12, 10e-15, 10e-15,
                                    10e-12, 20e-12));
    Engine engine(c);
    engine.set_reference_step_control(seed_controller);
    TranOptions opt;
    opt.t_stop = 600e-12;
    return engine.transient(opt).sample_count() - 1;
  };
  const std::size_t base = steps(false, false);
  const std::size_t dense = steps(true, false);
  EXPECT_LE(dense, base * 11 / 10)
      << "dense breakpoints inflated the step count";
  // The frozen seed controller documents the bug being guarded against:
  // the same stimulus used to cost several times the steps.
  const std::size_t seed_dense = steps(true, true);
  EXPECT_GE(seed_dense, base * 2);
}

TEST(Tran, FinalStateMatchesLastSample) {
  // final_state() is assigned once when the transient finishes (not
  // copied per accepted step) and must equal the last appended sample for
  // both node voltages and source branch currents.
  Circuit c;
  c.add_vsource("v1", "in", "0", Waveform::ramp(0.0, 1.0, 0.0, 1e-15));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  Engine engine(c);
  TranOptions opt;
  opt.t_stop = 1e-9;
  const auto result = engine.transient(opt);
  const auto& fs = result.final_state();
  ASSERT_EQ(fs.size(), c.node_count() + 1);
  EXPECT_EQ(fs[c.node("in") - 1], result.node("in").value.back());
  EXPECT_EQ(fs[c.node("out") - 1], result.node("out").value.back());
  EXPECT_EQ(fs[c.node_count()], result.source_current("v1").value.back());
}

TEST(Dc, GminLadderPolishAgreesWithDirect) {
  // A starved NR budget pushes the stacked-PMOS circuit onto the gmin
  // ladder. The ladder's last rung converges at gmin = 1e-13, not the
  // nominal 1e-12, so without the final warm-started polish its answer
  // differs from the direct solve's by more than roundoff. With it, both
  // paths agree to the NR voltage tolerance.
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 9;
  device::ModelCard n = device::golden_nmos();
  n.NFIN = 2;
  const auto build = [&] {
    Circuit c;
    c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
    c.add_mosfet("m1", "y", "0", "n1", device::FinFet(p, 300.0));
    c.add_mosfet("m2", "n1", "0", "n2", device::FinFet(p, 300.0));
    c.add_mosfet("m3", "n2", "0", "vdd", device::FinFet(p, 300.0));
    c.add_mosfet("m4", "y", "0", "0", device::FinFet(n, 300.0));
    return c;
  };
  Circuit c_direct = build();
  Engine direct(c_direct);
  const auto x_direct = direct.dc_operating_point();
  ASSERT_EQ(direct.last_diagnostics().fallback_path, "direct");

  Circuit c_ladder = build();
  Engine ladder(c_ladder);
  TranOptions starved;
  starved.max_nr_iterations = 4;
  const auto x_ladder = ladder.dc_operating_point(0.0, starved);
  ASSERT_EQ(ladder.last_diagnostics().fallback_path, "direct>gmin");

  ASSERT_EQ(x_direct.size(), x_ladder.size());
  for (std::size_t i = 0; i < x_direct.size(); ++i)
    EXPECT_NEAR(x_ladder[i], x_direct[i], starved.v_abstol) << "x" << i;
}

TEST(Tran, SourceCurrentEnergyMatchesLoad) {
  // Charging a pure load through an inverter: supply energy >= C*V^2/2.
  device::ModelCard nn = device::golden_nmos();
  nn.NFIN = 2;
  device::ModelCard pp = device::golden_pmos();
  pp.NFIN = 3;
  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
  c.add_vsource("vin", "in", "0",
                Waveform::ramp(0.7, 0.0, 50e-12, 10e-12));  // output rises
  c.add_mosfet("mp", "out", "in", "vdd", device::FinFet(pp, 300.0));
  c.add_mosfet("mn", "out", "in", "0", device::FinFet(nn, 300.0));
  const double load = 4e-15;
  c.add_capacitor("out", "0", load);
  Engine engine(c);
  TranOptions opt;
  opt.t_stop = 500e-12;
  const auto result = engine.transient(opt);
  const auto i = result.source_current("vdd");
  double energy = 0.0;
  for (std::size_t k = 1; k < i.time.size(); ++k)
    energy += -0.7 * 0.5 * (i.value[k] + i.value[k - 1]) *
              (i.time[k] - i.time[k - 1]);
  const double load_energy = load * 0.7 * 0.7;  // C*V^2 drawn from supply
  EXPECT_GT(energy, 0.9 * load_energy);
  EXPECT_LT(energy, 2.5 * load_energy);
}

}  // namespace
}  // namespace cryo::spice
