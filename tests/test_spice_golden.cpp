// Golden-value regression net for the SPICE engine: every case has a
// closed-form (or independently computed) answer and a tight tolerance,
// so a solver change that shifts results is caught here by tier-1 rather
// than by a downstream Liberty artifact diff. Also pins down the
// convergence fallback ladder: a hostile circuit that defeats plain NR
// and gmin stepping must converge via source stepping, deterministically
// at any thread count, and a starved transient must recover through the
// retry / backward-Euler rungs.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "device/finfet.hpp"
#include "device/modelcard.hpp"
#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "spice/engine.hpp"

namespace cryo::spice {
namespace {

obs::Counter& counter(const char* name) {
  return obs::registry().counter(name);
}

// Every value-golden case runs through BOTH linear-solver cores: the
// golden answers don't care which factorization produced them, so the
// same tolerances pin the sparse core to the same physics. (Bit-identity
// between the cores is NOT expected — the fill-reducing ordering
// eliminates in a different order, so the floating-point sums round
// differently; the cross-solver tolerance tests live in
// test_spice_sparse.cpp.)
const char* solver_name(const ::testing::TestParamInfo<LinearSolver>& info) {
  return info.param == LinearSolver::kSparse ? "Sparse" : "Dense";
}

class GoldenSolver : public ::testing::TestWithParam<LinearSolver> {};

TEST_P(GoldenSolver, ResistorDividerDc) {
  // 1 V across 1k + 3k + 6k: taps at 0.9 V and 0.6 V, current 0.1 mA.
  Circuit c;
  c.add_vsource("v1", "in", "0", Waveform::dc(1.0));
  c.add_resistor("in", "a", 1000.0);
  c.add_resistor("a", "b", 3000.0);
  c.add_resistor("b", "0", 6000.0);
  Engine engine(c);
  engine.set_solver(GetParam());
  const auto x = engine.dc_operating_point();
  // The engine ties every node to ground through gmin = 1e-12 S, which
  // shifts the ideal answer by a few nanovolts; the tolerance sits just
  // above that floor and far below the 0.1 % acceptance bar.
  EXPECT_NEAR(x[c.node("a") - 1], 0.9, 1e-8);
  EXPECT_NEAR(x[c.node("b") - 1], 0.6, 1e-8);
  EXPECT_NEAR(x[c.node_count()], -1e-4, 1e-11);
  EXPECT_EQ(engine.last_diagnostics().fallback_path, "direct");
}

TEST_P(GoldenSolver, RcChargeTransient) {
  // Near-step into R*C = 1 ns; v(t) = 1 - exp(-t/tau), checked to 0.1 %
  // of the swing at several points along the curve.
  Circuit c;
  c.add_vsource("v1", "in", "0", Waveform::ramp(0.0, 1.0, 0.0, 1e-15));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  Engine engine(c);
  engine.set_solver(GetParam());
  TranOptions opt;
  opt.t_stop = 3e-9;
  opt.dt_max = 2e-12;
  const auto result = engine.transient(opt);
  const auto out = result.node("out");
  for (double t : {0.2e-9, 0.5e-9, 1e-9, 2e-9, 3e-9}) {
    const double expected = 1.0 - std::exp(-t / 1e-9);
    EXPECT_NEAR(out.at(t), expected, 1e-3) << "t=" << t;
  }
}

TEST_P(GoldenSolver, RcDischargeTransient) {
  // The DC solve at t=0 charges the cap to 1 V (source still high); the
  // source then drops and v(t) = exp(-t/tau).
  Circuit c;
  c.add_vsource("v1", "in", "0", Waveform::ramp(1.0, 0.0, 0.0, 1e-15));
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  Engine engine(c);
  engine.set_solver(GetParam());
  TranOptions opt;
  opt.t_stop = 3e-9;
  opt.dt_max = 2e-12;
  const auto result = engine.transient(opt);
  const auto out = result.node("out");
  for (double t : {0.2e-9, 0.5e-9, 1e-9, 2e-9, 3e-9}) {
    const double expected = std::exp(-t / 1e-9);
    EXPECT_NEAR(out.at(t), expected, 1e-3) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, GoldenSolver,
                         ::testing::Values(LinearSolver::kDense,
                                           LinearSolver::kSparse),
                         solver_name);

// Diode-connected FET (gate tied to drain) fed from vdd through R. The
// engine's answer must match a scalar bisection on the same device model:
// f(v) = Id(v, v) - (vdd - v) / R has exactly one root in [0, vdd].
class DiodeFetGolden
    : public ::testing::TestWithParam<std::tuple<double, LinearSolver>> {};

TEST_P(DiodeFetGolden, OperatingPointMatchesBisection) {
  const double temperature = std::get<0>(GetParam());
  const double vdd = 0.7;
  const double r = 5000.0;
  device::ModelCard card = device::golden_nmos();
  card.NFIN = 4;
  const device::FinFet fet(card, temperature);

  double lo = 0.0, hi = vdd;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double f = fet.drain_current(mid, mid) - (vdd - mid) / r;
    (f > 0.0 ? hi : lo) = mid;
  }
  const double v_ref = 0.5 * (lo + hi);

  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Waveform::dc(vdd));
  c.add_resistor("vdd", "d", r);
  c.add_mosfet("m1", "d", "d", "0", device::FinFet(card, temperature));
  Engine engine(c);
  engine.set_solver(std::get<1>(GetParam()));
  const auto x = engine.dc_operating_point();
  // 0.1 % of the supply range.
  EXPECT_NEAR(x[c.node("d") - 1], v_ref, 0.7e-3) << "T=" << temperature;
}

INSTANTIATE_TEST_SUITE_P(
    TemperaturesAndSolvers, DiodeFetGolden,
    ::testing::Combine(::testing::Values(300.0, 10.0),
                       ::testing::Values(LinearSolver::kDense,
                                         LinearSolver::kSparse)),
    [](const auto& info) {
      const bool sparse = std::get<1>(info.param) == LinearSolver::kSparse;
      return std::string(std::get<0>(info.param) > 100.0 ? "T300" : "T10") +
             (sparse ? "Sparse" : "Dense");
    });

// Hostile DC case: a 30 V rail (far beyond what the NR voltage limiter
// can cover in a starved iteration budget) dividing down to a ~0.7 V
// local supply that powers a cross-coupled pair, plus a floating gate
// node. Plain NR and the gmin ladder both run out of budget; the
// source-stepping continuation walks the rail up and converges.
Circuit hostile_circuit() {
  device::ModelCard n = device::golden_nmos();
  n.NFIN = 4;
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 6;
  Circuit c;
  c.add_vsource("vhv", "hv", "0", Waveform::dc(30.0));
  c.add_resistor("hv", "vddl", 42000.0);
  c.add_resistor("vddl", "0", 1000.0);
  c.add_mosfet("mp1", "q", "qb", "vddl", device::FinFet(p, 300.0));
  c.add_mosfet("mn1", "q", "qb", "0", device::FinFet(n, 300.0));
  c.add_mosfet("mp2", "qb", "q", "vddl", device::FinFet(p, 300.0));
  c.add_mosfet("mn2", "qb", "q", "0", device::FinFet(n, 300.0));
  // Gate node with no driver at all: only gmin references it.
  c.add_mosfet("mf", "q", "float_g", "0", device::FinFet(n, 300.0));
  return c;
}

// The fallback ladder (gmin stepping, source stepping, transient retries)
// sits above the linear core, so its behaviour — which rungs fire, where
// the solution lands — must be solver-independent. Run the ladder cases
// through both cores.
class FallbackLadderSolver : public ::testing::TestWithParam<LinearSolver> {};

TEST_P(FallbackLadderSolver, HostileDcConvergesViaSourceStepping) {
  auto& source_steps = counter("spice.source_step_fallbacks");
  auto& gmin_steps = counter("spice.gmin_fallbacks");
  const auto ss0 = source_steps.value();
  const auto gm0 = gmin_steps.value();

  Circuit c = hostile_circuit();
  Engine engine(c);
  engine.set_solver(GetParam());
  TranOptions opt;
  opt.max_nr_iterations = 4;  // starves direct NR and the gmin ladder
  const auto x = engine.dc_operating_point(0.0, opt);

  EXPECT_EQ(engine.last_diagnostics().fallback_path,
            "direct>gmin>source_step");
  EXPECT_GE(source_steps.value(), ss0 + 1);
  EXPECT_GE(gmin_steps.value(), gm0 + 1);
  // Rails must be physical: full 30 V at the source, divider at
  // 30 * 1k / 43k minus the latch's supply draw, latch resolved.
  EXPECT_NEAR(x[c.node("hv") - 1], 30.0, 1e-3);
  EXPECT_NEAR(x[c.node("vddl") - 1], 0.6976, 0.02);
  const double q = x[c.node("q") - 1];
  const double qb = x[c.node("qb") - 1];
  EXPECT_LT(std::min(q, qb), 0.05);
  EXPECT_GT(std::max(q, qb), 0.6);
  EXPECT_NEAR(x[c.node("float_g") - 1], 0.0, 1e-9);
}

TEST_P(FallbackLadderSolver, SourceSteppingIsByteIdenticalAcrossThreads) {
  // The ladder must be bit-deterministic: solving the same hostile
  // circuit on 1 thread and on N threads yields identical doubles.
  const LinearSolver solver = GetParam();
  const auto solve_all = [solver](int threads) {
    std::vector<std::vector<double>> results(4);
    exec::parallel_for(
        results.size(),
        [&](std::size_t i) {
          Circuit c = hostile_circuit();
          Engine engine(c);
          engine.set_solver(solver);
          TranOptions opt;
          opt.max_nr_iterations = 4;
          results[i] = engine.dc_operating_point(0.0, opt);
        },
        threads);
    return results;
  };
  const auto serial = solve_all(1);
  const auto parallel = solve_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size());
    for (std::size_t k = 0; k < serial[i].size(); ++k)
      EXPECT_EQ(serial[i][k], parallel[i][k]) << "solve " << i << " x" << k;
    // All solves of the same circuit are identical, too.
    EXPECT_EQ(serial[i], serial[0]);
  }
}

TEST_P(FallbackLadderSolver, StarvedTransientRecoversThroughRetriesAndBe) {
  // A sharp edge into a big load with an absurdly small NR budget: steps
  // on the edge fail the plain attempt and walk the ladder (boosted
  // budget, then backward Euler). The output must still switch cleanly.
  auto& retries = counter("spice.transient_retries");
  auto& be_steps = counter("spice.transient_be_fallbacks");
  const auto tr0 = retries.value();
  const auto be0 = be_steps.value();

  device::ModelCard n = device::golden_nmos();
  n.NFIN = 8;
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 12;
  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
  c.add_vsource("vin", "in", "0", Waveform::ramp(0.0, 0.7, 50e-12, 1e-12));
  c.add_mosfet("mp", "out", "in", "vdd", device::FinFet(p, 300.0));
  c.add_mosfet("mn", "out", "in", "0", device::FinFet(n, 300.0));
  c.add_capacitor("out", "0", 50e-15);
  Engine engine(c);
  engine.set_solver(GetParam());
  TranOptions opt;
  opt.t_stop = 400e-12;
  opt.dt_max = 5e-12;
  opt.max_nr_iterations = 2;
  const auto result = engine.transient(opt);

  EXPECT_GT(retries.value(), tr0);
  EXPECT_GT(be_steps.value(), be0);
  const auto out = result.node("out");
  EXPECT_GT(out.value.front(), 0.69);  // input low -> output high
  EXPECT_LT(out.value.back(), 0.01);   // input high -> output low
}

INSTANTIATE_TEST_SUITE_P(Solvers, FallbackLadderSolver,
                         ::testing::Values(LinearSolver::kDense,
                                           LinearSolver::kSparse),
                         solver_name);

TEST(SolveError, CarriesStructuredDiagnostics) {
  // Two FETs fighting across a 30 V rail with a 1-iteration budget: the
  // whole ladder fails and the thrown SolveError must carry the full
  // structured account of the final attempt.
  Circuit c = hostile_circuit();
  Engine engine(c);
  TranOptions opt;
  opt.max_nr_iterations = 1;
  try {
    engine.dc_operating_point(0.0, opt);
    FAIL() << "expected SolveError";
  } catch (const SolveError& err) {
    const SolveDiagnostics& d = err.diagnostics();
    EXPECT_EQ(d.fallback_path, "direct>gmin>source_step");
    EXPECT_FALSE(d.failing_node.empty());
    EXPECT_GT(d.worst_residual, 0.0);
    EXPECT_EQ(d.iterations, 1);
    EXPECT_GT(d.source_scale, 0.0);
    // what() embeds the rendered diagnostics for legacy catch sites.
    EXPECT_NE(std::string(err.what()).find("source_step"),
              std::string::npos);
  }
}

// A small switching cell with a pulse-train stimulus: MOSFET stamps, cap
// companions, source rows, and breakpoint landings all in play — the full
// surface the incremental stamping path must reproduce.
Circuit stamping_identity_circuit(double temperature) {
  device::ModelCard n = device::golden_nmos();
  n.NFIN = 2;
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 3;
  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
  c.add_vsource("va", "a", "0",
                Waveform::pulse(0.0, 0.7, 5e-12, 4e-12, 4e-12, 16e-12,
                                40e-12));
  c.add_vsource("vb", "b", "0",
                Waveform::pulse(0.0, 0.7, 11e-12, 4e-12, 4e-12, 20e-12,
                                56e-12));
  c.add_mosfet("mpa", "out", "a", "vdd", device::FinFet(p, temperature));
  c.add_mosfet("mpb", "out", "b", "vdd", device::FinFet(p, temperature));
  c.add_mosfet("mna", "out", "a", "mid", device::FinFet(n, temperature));
  c.add_mosfet("mnb", "mid", "b", "0", device::FinFet(n, temperature));
  c.add_resistor("out", "load", 500.0);
  c.add_capacitor("load", "0", 2e-15);
  return c;
}

class StampingBitIdentity : public ::testing::TestWithParam<double> {};

TEST_P(StampingBitIdentity, TransientTracesAreExactlyEqual) {
  // The incremental path (cached skeleton + memcpy + MOSFET-only restamp)
  // must reproduce the reference full-rebuild path bit for bit: same
  // accumulation order means the same floating-point sums, so node traces
  // compare with EXPECT_EQ on raw doubles — the property that lets the
  // committed Liberty artifacts stand without a characterizer version
  // bump.
  Circuit c = stamping_identity_circuit(GetParam());
  TranOptions opt;
  opt.t_stop = 200e-12;

  Engine reference(c);
  reference.set_reference_stamping(true);
  const auto r_ref = reference.transient(opt);

  Engine incremental(c);
  const auto r_inc = incremental.transient(opt);

  for (const char* node : {"a", "b", "mid", "out", "load", "vdd"}) {
    const auto t_ref = r_ref.node(node);
    const auto t_inc = r_inc.node(node);
    ASSERT_EQ(t_ref.time.size(), t_inc.time.size()) << node;
    for (std::size_t i = 0; i < t_ref.time.size(); ++i) {
      ASSERT_EQ(t_ref.time[i], t_inc.time[i]) << node << " sample " << i;
      ASSERT_EQ(t_ref.value[i], t_inc.value[i]) << node << " sample " << i;
    }
  }
  ASSERT_EQ(r_ref.final_state(), r_inc.final_state());
}

INSTANTIATE_TEST_SUITE_P(Temperatures, StampingBitIdentity,
                         ::testing::Values(300.0, 10.0));

TEST(SolveContext, WarmTransientIsAllocationFree) {
  // After one warm-up run has sized every workspace, repeated transients
  // through the same context must not touch the heap via any context
  // buffer — the property that makes arc sweeps allocation-free in steady
  // state.
  Circuit c = stamping_identity_circuit(300.0);
  SolveContext ctx;
  Engine engine(c, &ctx);
  TranOptions opt;
  opt.t_stop = 200e-12;
  engine.transient(opt);  // warm-up sizes all buffers
  const std::uint64_t warm = ctx.allocations();
  EXPECT_GT(warm, 0u);
  engine.transient(opt);
  engine.transient(opt);
  EXPECT_EQ(ctx.allocations(), warm);
}

TEST(SolveContext, IsReusedAcrossCircuits) {
  // One context threaded through engines for different circuits (the
  // characterizer's per-cell pattern): the second, smaller circuit fits in
  // the first circuit's buffers and allocates nothing new.
  SolveContext ctx;
  Circuit big = stamping_identity_circuit(300.0);
  Engine big_engine(big, &ctx);
  TranOptions opt;
  opt.t_stop = 100e-12;
  big_engine.transient(opt);
  const std::uint64_t after_big = ctx.allocations();

  Circuit small;
  small.add_vsource("v1", "in", "0", Waveform::ramp(0.0, 1.0, 0.0, 1e-12));
  small.add_resistor("in", "out", 1000.0);
  small.add_capacitor("out", "0", 1e-15);
  Engine small_engine(small, &ctx);
  small_engine.transient(opt);
  EXPECT_EQ(ctx.allocations(), after_big);
}

TEST(SolveContext, BatchedStimulusReuseIsBitIdentical) {
  // The batched characterizer replays a whole (slew, load) grid — and the
  // adaptive settle-retry ladder — through ONE engine, mutating only the
  // drive waveform and the load capacitance between transients. No
  // engine- or context-side state may survive a solve: a reused engine's
  // next transient must be bit-identical to a fresh engine + fresh
  // context solving the same stimulus. This pins the cross-solve reset of
  // the cached skeleton, step control, and cap companion state.
  Circuit reused = stamping_identity_circuit(300.0);
  const std::size_t drive = reused.vsource_index("va");
  // The explicit load is the last capacitor added (after device caps).
  const std::size_t load = reused.capacitors().size() - 1;

  SolveContext warm_ctx;
  Engine engine(reused, &warm_ctx);
  TranOptions first;
  first.t_stop = 80e-12;  // a short "attempt 0" window
  engine.transient(first);

  const Waveform next = Waveform::ramp(0.0, 0.7, 10e-12, 20e-12);
  reused.set_vsource_wave(drive, next);
  reused.set_capacitor_farads(load, 5e-15);
  TranOptions opt;
  opt.t_stop = 200e-12;  // the widened retry window
  const auto r_reused = engine.transient(opt);

  Circuit fresh = stamping_identity_circuit(300.0);
  fresh.set_vsource_wave(fresh.vsource_index("va"), next);
  fresh.set_capacitor_farads(fresh.capacitors().size() - 1, 5e-15);
  SolveContext fresh_ctx;
  Engine fresh_engine(fresh, &fresh_ctx);
  const auto r_fresh = fresh_engine.transient(opt);

  for (const char* node : {"a", "b", "mid", "out", "load", "vdd"}) {
    const auto t_reused = r_reused.node(node);
    const auto t_fresh = r_fresh.node(node);
    ASSERT_EQ(t_reused.time.size(), t_fresh.time.size()) << node;
    for (std::size_t i = 0; i < t_reused.time.size(); ++i) {
      ASSERT_EQ(t_reused.time[i], t_fresh.time[i]) << node << " sample " << i;
      ASSERT_EQ(t_reused.value[i], t_fresh.value[i])
          << node << " sample " << i;
    }
  }
  ASSERT_EQ(r_reused.final_state(), r_fresh.final_state());
}

TEST(LuSolve, RejectsIllConditionedRelative) {
  // Scaled near-singular system: every entry is far above the old 1e-300
  // absolute floor, but the second pivot collapses relative to its
  // column. The relative test must refuse it.
  std::vector<double> a = {1e-6, 2e-6, 2e-6, 4e-6 + 1e-22};
  std::vector<double> b = {1e-6, 2e-6};
  EXPECT_FALSE(lu_solve(a, b, 2));
}

TEST(LuSolve, ReportsNearSingularPivot) {
  // Pivot ratio ~1e-10 sits between the reject (1e-13) and the warn
  // (1e-8) thresholds: solved, but flagged.
  std::vector<double> a = {1.0, 1.0, 1.0, 1.0 + 1e-10};
  std::vector<double> b = {2.0, 2.0 + 1e-10};
  LuStats stats;
  ASSERT_TRUE(lu_solve(a, b, 2, &stats));
  EXPECT_TRUE(stats.near_singular);
  EXPECT_LT(stats.min_pivot_ratio, kLuNearSingularRatio);
  EXPECT_NEAR(b[0], 1.0, 1e-3);
  EXPECT_NEAR(b[1], 1.0, 1e-3);
}

}  // namespace
}  // namespace cryo::spice
