// Sparse MNA coverage: the SparseLu kernel against the dense LU oracle,
// dense-vs-sparse engine parity at cell and block scale, the kAuto
// crossover, a transistor-level SRAM column cross-checked against the
// sram::SramModel macro timing, and the pooled-SolveContext reuse
// guarantees (alternating topologies, allocation-free warm transients).
//
// Why parity is a tolerance, not bit-identity: the sparse core eliminates
// in the fill-reducing column order with its own row-pivot choices, so its
// floating-point sums associate differently from the dense core's
// natural-order elimination. Both factorizations are exact to O(eps * cond)
// and both NR loops converge to the same tolerances, so solutions agree to
// ~1e-9 of the node scale — but never bit for bit. (Bit-identity *within*
// each core — across threads, pooled contexts, and repeated solves — is
// still asserted, here and in test_spice_golden.cpp.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cells/flatten.hpp"
#include "device/finfet.hpp"
#include "device/modelcard.hpp"
#include "obs/metrics.hpp"
#include "spice/engine.hpp"
#include "spice/sparse.hpp"
#include "sram/sram.hpp"

namespace cryo::spice {
namespace {

using sparse::Coord;
using sparse::FactorStats;
using sparse::FactorStatus;
using sparse::SparseLu;

// ---------------------------------------------------------------------------
// Kernel-level: SparseLu against the dense lu_solve on the same system.
// ---------------------------------------------------------------------------

// Assembles the dense row-major matrix the coord/value pairs describe
// (duplicates accumulate, ground coords drop) and solves with the dense
// oracle.
std::vector<double> dense_solve(std::size_t n, const std::vector<Coord>& coords,
                                const std::vector<double>& add,
                                std::vector<double> b) {
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (coords[i].row < 0 || coords[i].col < 0) continue;
    a[static_cast<std::size_t>(coords[i].row) * n +
      static_cast<std::size_t>(coords[i].col)] += add[i];
  }
  EXPECT_TRUE(lu_solve(a, b, n));
  return b;
}

// An asymmetric 5x5 pattern with duplicate coordinates and ground drops —
// the same shape engine stamping produces.
struct KernelCase {
  std::size_t n = 5;
  std::vector<Coord> coords;
  std::vector<double> add;  // one addend per coord occurrence

  KernelCase() {
    const auto at = [&](int r, int c, double v) {
      coords.push_back({r, c});
      add.push_back(v);
    };
    at(0, 0, 3.0);
    at(0, 0, 1.0);  // duplicate: accumulates into the same slot
    at(0, 2, -1.0);
    at(1, 1, 2.5);
    at(1, 4, 0.5);
    at(2, 0, -1.0);
    at(2, 2, 4.0);
    at(2, 3, -2.0);
    at(3, 2, -2.0);
    at(3, 3, 5.0);
    at(-1, 3, 9.0);  // ground row: dropped
    at(4, -1, 9.0);  // ground col: dropped
    at(4, 1, 0.5);
    at(4, 4, 1.5);
    at(4, 0, 0.25);
  }

  void stamp(SparseLu& lu, double scale) const {
    auto& vals = lu.values();
    std::fill(vals.begin(), vals.end(), 0.0);
    for (std::size_t i = 0; i < coords.size(); ++i) {
      const std::int32_t slot = lu.slot_of()[i];
      if (slot == sparse::kNoSlot) {
        EXPECT_TRUE(coords[i].row < 0 || coords[i].col < 0);
        continue;
      }
      vals[static_cast<std::size_t>(slot)] += add[i] * scale;
    }
  }

  std::vector<double> scaled_add(double scale) const {
    std::vector<double> s = add;
    for (double& v : s) v *= scale;
    return s;
  }
};

TEST(SparseKernel, FactorRefactorSolveMatchDenseOracle) {
  KernelCase k;
  SparseLu lu;
  std::uint64_t allocs = 0;
  lu.analyze(k.n, k.coords, &allocs);
  ASSERT_TRUE(lu.analyzed());
  EXPECT_EQ(lu.dim(), k.n);
  // 12 distinct in-matrix coordinates (one duplicate pair, two drops).
  EXPECT_EQ(lu.pattern_nnz(), 12u);

  const std::vector<double> rhs = {1.0, -2.0, 0.5, 3.0, -1.0};

  // First pass: full factorization.
  k.stamp(lu, 1.0);
  FactorStats stats;
  ASSERT_EQ(lu.factor(&stats, &allocs), FactorStatus::kOk);
  EXPECT_TRUE(lu.factored());
  EXPECT_GE(lu.fill_nnz(), lu.pattern_nnz());
  std::vector<double> x = rhs;
  lu.solve(x);
  const auto x_ref = dense_solve(k.n, k.coords, k.scaled_add(1.0), rhs);
  for (std::size_t i = 0; i < k.n; ++i)
    EXPECT_NEAR(x[i], x_ref[i], 1e-12) << "factor x" << i;

  // Numeric refactorization with new values through the frozen pattern.
  k.stamp(lu, 2.5);
  ASSERT_EQ(lu.refactor(&stats), FactorStatus::kOk);
  x = rhs;
  lu.solve(x);
  const auto x_ref2 = dense_solve(k.n, k.coords, k.scaled_add(2.5), rhs);
  for (std::size_t i = 0; i < k.n; ++i)
    EXPECT_NEAR(x[i], x_ref2[i], 1e-12) << "refactor x" << i;

  // Refactor is deterministic: same values, bit-identical solution.
  k.stamp(lu, 2.5);
  ASSERT_EQ(lu.refactor(&stats), FactorStatus::kOk);
  std::vector<double> x2 = rhs;
  lu.solve(x2);
  EXPECT_EQ(x, x2);
}

TEST(SparseKernel, RefactorRejectsStalePivotsAndFactorRecovers) {
  // First factor with a dominant (0,0); then move the dominance so the
  // frozen pivot collapses relative to its column. refactor() must hand
  // back kRepivot (not a garbage solution), and a fresh factor() must
  // succeed with new pivots.
  const std::size_t n = 2;
  const std::vector<Coord> coords = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  SparseLu lu;
  std::uint64_t allocs = 0;
  lu.analyze(n, coords, &allocs);

  auto stamp = [&](double a00, double a01, double a10, double a11) {
    auto& v = lu.values();
    std::fill(v.begin(), v.end(), 0.0);
    const std::int32_t* slot = lu.slot_of().data();
    v[slot[0]] += a00;
    v[slot[1]] += a01;
    v[slot[2]] += a10;
    v[slot[3]] += a11;
  };

  FactorStats stats;
  stamp(1.0, 0.0, 0.0, 1.0);
  ASSERT_EQ(lu.factor(&stats, &allocs), FactorStatus::kOk);

  // Pivot (0,0) collapses to 1e-12 of its column: stale by the
  // kLuNearSingularRatio test.
  stamp(1e-12, 1.0, 1.0, 1.0);
  EXPECT_EQ(lu.refactor(&stats), FactorStatus::kRepivot);
  ASSERT_EQ(lu.factor(&stats, &allocs), FactorStatus::kOk);
  std::vector<double> x = {1.0, 2.0};
  lu.solve(x);
  const auto x_ref = dense_solve(
      n, coords, {1e-12, 1.0, 1.0, 1.0}, {1.0, 2.0});
  EXPECT_NEAR(x[0], x_ref[0], 1e-9);
  EXPECT_NEAR(x[1], x_ref[1], 1e-9);
}

TEST(SparseKernel, SingularMatrixIsRejected) {
  const std::size_t n = 2;
  const std::vector<Coord> coords = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  SparseLu lu;
  std::uint64_t allocs = 0;
  lu.analyze(n, coords, &allocs);
  auto& v = lu.values();
  const auto& slot = lu.slot_of();
  std::fill(v.begin(), v.end(), 0.0);
  // Rank-1: second pivot collapses below kLuSingularRatio.
  v[slot[0]] = 1.0;
  v[slot[1]] = 2.0;
  v[slot[2]] = 1.0;
  v[slot[3]] = 2.0 + 1e-22;
  FactorStats stats;
  EXPECT_EQ(lu.factor(&stats, &allocs), FactorStatus::kSingular);
  EXPECT_FALSE(lu.factored());
}

TEST(SparseKernel, MinimumDegreeOrderIsAPermutation) {
  // Star graph: center node 0 touches everyone. Min-degree must schedule
  // the center last-ish (ordering the leaves first keeps fill at zero) and
  // in any case return a valid permutation.
  const std::int32_t n = 6;
  std::vector<std::int32_t> col_ptr = {0, 6, 8, 10, 12, 14, 16};
  std::vector<std::int32_t> row_idx = {0, 1, 2, 3, 4, 5,   // col 0: dense
                                       0, 1, 0, 2, 0, 3,   // cols 1..3
                                       0, 4, 0, 5};        // cols 4..5
  const auto q = sparse::minimum_degree_order(n, col_ptr, row_idx);
  ASSERT_EQ(q.size(), static_cast<std::size_t>(n));
  std::vector<bool> seen(n, false);
  for (const std::int32_t c : q) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, n);
    EXPECT_FALSE(seen[c]) << "column " << c << " repeated";
    seen[c] = true;
  }
  // The hub has degree 5, every leaf degree 1: leaves are eliminated
  // first (leaf 1 by the smallest-index tie-break), and the hub only
  // becomes eligible once its degree has collapsed — i.e. among the final
  // two, when only one leaf is left and the tie-break favors its index.
  EXPECT_EQ(q.front(), 1);
  const auto hub_pos =
      std::find(q.begin(), q.end(), 0) - q.begin();
  EXPECT_GE(hub_pos, n - 2);
}

// ---------------------------------------------------------------------------
// Engine-level parity: sparse path vs the dense oracle.
// ---------------------------------------------------------------------------

// The hostile net from the golden suite: 30 V rail divided to a ~0.7 V
// local supply powering a cross-coupled pair plus a floating gate.
Circuit hostile_circuit() {
  device::ModelCard n = device::golden_nmos();
  n.NFIN = 4;
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 6;
  Circuit c;
  c.add_vsource("vhv", "hv", "0", Waveform::dc(30.0));
  c.add_resistor("hv", "vddl", 42000.0);
  c.add_resistor("vddl", "0", 1000.0);
  c.add_mosfet("mp1", "q", "qb", "vddl", device::FinFet(p, 300.0));
  c.add_mosfet("mn1", "q", "qb", "0", device::FinFet(n, 300.0));
  c.add_mosfet("mp2", "qb", "q", "vddl", device::FinFet(p, 300.0));
  c.add_mosfet("mn2", "qb", "q", "0", device::FinFet(n, 300.0));
  c.add_mosfet("mf", "q", "float_g", "0", device::FinFet(n, 300.0));
  return c;
}

// The golden suite's switching cell: MOSFET stamps, cap companions, source
// rows, and breakpoint landings all in play.
Circuit switching_cell_circuit(double temperature) {
  device::ModelCard n = device::golden_nmos();
  n.NFIN = 2;
  device::ModelCard p = device::golden_pmos();
  p.NFIN = 3;
  Circuit c;
  c.add_vsource("vdd", "vdd", "0", Waveform::dc(0.7));
  c.add_vsource("va", "a", "0",
                Waveform::pulse(0.0, 0.7, 5e-12, 4e-12, 4e-12, 16e-12,
                                40e-12));
  c.add_vsource("vb", "b", "0",
                Waveform::pulse(0.0, 0.7, 11e-12, 4e-12, 4e-12, 20e-12,
                                56e-12));
  c.add_mosfet("mpa", "out", "a", "vdd", device::FinFet(p, temperature));
  c.add_mosfet("mpb", "out", "b", "vdd", device::FinFet(p, temperature));
  c.add_mosfet("mna", "out", "a", "mid", device::FinFet(n, temperature));
  c.add_mosfet("mnb", "mid", "b", "0", device::FinFet(n, temperature));
  c.add_resistor("out", "load", 500.0);
  c.add_capacitor("load", "0", 2e-15);
  return c;
}

TEST(SparseParity, HostileDcMatchesDenseOracle) {
  Circuit c = hostile_circuit();

  Engine dense(c);
  dense.set_reference_solver(true);
  ASSERT_EQ(dense.effective_solver(), LinearSolver::kDense);
  TranOptions opt;
  opt.max_nr_iterations = 4;  // walk the full ladder through both cores
  const auto xd = dense.dc_operating_point(0.0, opt);

  Engine sp(c);
  sp.set_solver(LinearSolver::kSparse);
  ASSERT_EQ(sp.effective_solver(), LinearSolver::kSparse);
  const auto xs = sp.dc_operating_point(0.0, opt);
  EXPECT_EQ(sp.last_diagnostics().fallback_path, "direct>gmin>source_step");

  ASSERT_EQ(xd.size(), xs.size());
  for (std::size_t i = 0; i < xd.size(); ++i) {
    // Converged-NR agreement: absolute floor for the ~0 nodes plus a
    // relative term for the 30 V rail.
    EXPECT_NEAR(xs[i], xd[i], 1e-7 + 1e-7 * std::abs(xd[i])) << "x" << i;
  }
}

class SparseParityTran : public ::testing::TestWithParam<double> {};

TEST_P(SparseParityTran, SwitchingCellTracesMatchDenseOracle) {
  // The adaptive step controller sees slightly different NR trajectories
  // through the two cores, so accepted time points need not line up;
  // compare interpolated traces on a fixed probe grid instead. The bound
  // is then set by the step controller's local truncation error between
  // grids (~1e-3 of the swing on the fastest edges), not by the linear
  // cores — which agree to ~1e-9 at matched states (see the DC parity
  // tests above).
  Circuit c = switching_cell_circuit(GetParam());
  TranOptions opt;
  opt.t_stop = 200e-12;

  Engine dense(c);
  dense.set_reference_solver(true);
  const auto rd = dense.transient(opt);

  Engine sp(c);
  sp.set_solver(LinearSolver::kSparse);
  const auto rs = sp.transient(opt);

  for (const char* node : {"a", "b", "mid", "out", "load", "vdd"}) {
    const auto td = rd.node(node);
    const auto ts = rs.node(node);
    for (double t = 0.0; t <= 200e-12; t += 2e-12)
      EXPECT_NEAR(ts.at(t), td.at(t), 2e-3) << node << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SparseParityTran,
                         ::testing::Values(300.0, 10.0));

// ---------------------------------------------------------------------------
// Block scale: kAuto crossover and replicated nets.
// ---------------------------------------------------------------------------

// N copies of the hostile net in one system, adjacent copies' local rails
// weakly coupled — the block-scale shape the sparse-scaling bench runs.
Circuit replicated_hostile(int copies) {
  const Circuit base = hostile_circuit();
  Circuit c;
  for (int i = 0; i < copies; ++i)
    c.append_copy(base, "c" + std::to_string(i) + ".");
  for (int i = 0; i + 1 < copies; ++i)
    c.add_resistor("c" + std::to_string(i) + ".vddl",
                   "c" + std::to_string(i + 1) + ".vddl", 1e6);
  return c;
}

TEST(SparseBlockScale, AutoCrossoverPicksSparseAndMatchesDenseOracle) {
  // 16 hostile copies: dim = 16 * (5 nodes + 1 source row) = 96, past the
  // kAuto threshold — the engine must pick the sparse core on its own.
  Circuit c = replicated_hostile(16);
  Engine automatic(c);
  ASSERT_EQ(automatic.effective_solver(), LinearSolver::kSparse);

  auto& symbolic = obs::registry().counter("spice.symbolic_analyses");
  const auto sym0 = symbolic.value();

  TranOptions opt;
  opt.max_nr_iterations = 4;
  const auto xs = automatic.dc_operating_point(0.0, opt);
  // One topology, one symbolic analysis — however many NR iterations and
  // ladder rungs ran.
  EXPECT_EQ(symbolic.value(), sym0 + 1);
  EXPECT_GT(obs::registry().gauge("spice.fill_nnz").value(), 0.0);

  Engine dense(c);
  dense.set_reference_solver(true);
  ASSERT_EQ(dense.effective_solver(), LinearSolver::kDense);
  const auto xd = dense.dc_operating_point(0.0, opt);

  ASSERT_EQ(xs.size(), xd.size());
  for (std::size_t i = 0; i < xd.size(); ++i)
    EXPECT_NEAR(xs[i], xd[i], 1e-7 + 1e-7 * std::abs(xd[i])) << "x" << i;

  // Every copy's latch must resolve to the same physical state.
  for (int i = 0; i < 16; ++i) {
    const std::string p = "c" + std::to_string(i) + ".";
    Circuit& mc = c;
    const double q = xs[mc.node(p + "q") - 1];
    const double qb = xs[mc.node(p + "qb") - 1];
    EXPECT_LT(std::min(q, qb), 0.05) << p;
    EXPECT_GT(std::max(q, qb), 0.6) << p;
  }
}

// ---------------------------------------------------------------------------
// Transistor-level SRAM column vs the macro timing model.
// ---------------------------------------------------------------------------

TEST(SparseBlockScale, SramColumn16CrossChecksMacroTiming) {
  const double temperature = 300.0;
  const double vdd = 0.7;
  const double swing = 0.12;  // sram.cpp's kBitlineSwing
  cells::NetlistFlattener flattener(device::golden_nmos(),
                                    device::golden_pmos(), temperature);
  cells::SramColumnSpec spec;
  spec.rows = 16;
  spec.cols = 1;
  cells::SramColumn column = cells::make_sram_column(flattener, spec);

  Engine engine(column.circuit);
  engine.set_solver(LinearSolver::kSparse);  // 16x1 sits below kAuto's 64
  TranOptions opt;
  opt.t_stop = 200e-12;
  opt.dt_max = 2e-12;
  const auto result = engine.transient(opt);

  // Read: bl discharges by the sense swing through the accessed cell; blb
  // stays precharged (the cell stores 0).
  const auto wl = result.node(column.wordline);
  const auto bl = result.node(column.bitlines[0]);
  const auto blb = result.node(column.bitlines_bar[0]);
  const double t_wl = wl.cross(0.5 * vdd, true);
  ASSERT_GT(t_wl, 0.0);
  const double level = (1.0 - swing) * vdd;
  const double t_bl = bl.cross(level, false, t_wl);
  ASSERT_GT(t_bl, t_wl);
  EXPECT_GT(blb.at(t_bl), level) << "blb must hold through the read";

  const double t_sim = t_bl - t_wl;

  // Macro model cross-check. timing() folds the bitline term in with
  // decode/wordline/sense, but rows=16 and rows=12 share the decode depth
  // (ceil(log2) = 4) and the wordline/sense terms don't depend on rows, so
  // the difference isolates 4 cells' worth of bitline discharge:
  //   t_bitline(16) = 4 * (t(16) - t(12)).
  sram::SramModel model(device::golden_nmos(), device::golden_pmos(),
                        temperature, vdd);
  const double t16 = model.timing({16, 1}).access_time;
  const double t12 = model.timing({12, 1}).access_time;
  const double t_model = 4.0 * (t16 - t12);
  ASSERT_GT(t_model, 0.0);

  // The macro model rates the cell stack at 0.22 * Id(vdd, vdd/2) and
  // lumps every junction into one per-cell figure; the flat netlist
  // resolves the real series stack and charge sharing. Same cap scaling,
  // same supply, same devices — agreement to a small factor is the claim,
  // not equality.
  EXPECT_GT(t_sim, 0.12 * t_model)
      << "t_sim=" << t_sim << " t_model=" << t_model;
  EXPECT_LT(t_sim, 8.0 * t_model)
      << "t_sim=" << t_sim << " t_model=" << t_model;
}

// ---------------------------------------------------------------------------
// Pooled SolveContext: alternating topologies and allocation-free reuse.
// ---------------------------------------------------------------------------

class PooledContextAlternating
    : public ::testing::TestWithParam<LinearSolver> {};

TEST_P(PooledContextAlternating, MatchesFreshContextBitForBit) {
  // One context threaded through engines of very different dimensions,
  // alternating A -> B -> A -> B: every solve must be bit-identical to the
  // same solve through a fresh private context. This pins the
  // SolveContext::prepare() dimension tracking — a grow-only scratch that
  // kept a bigger circuit's tail (or a stale sparse pattern owner) would
  // show up here as a flipped bit.
  const LinearSolver solver = GetParam();
  const Circuit big = switching_cell_circuit(300.0);
  Circuit small;
  small.add_vsource("v1", "in", "0", Waveform::dc(1.0));
  small.add_resistor("in", "mid", 1000.0);
  small.add_resistor("mid", "0", 3000.0);
  small.add_capacitor("mid", "0", 1e-15);

  const auto fresh = [&](const Circuit& c) {
    Engine e(c);
    e.set_solver(solver);
    return e.dc_operating_point();
  };
  const std::vector<double> ref_big = fresh(big);
  const std::vector<double> ref_small = fresh(small);

  SolveContext ctx;
  Engine eb(big, &ctx);
  eb.set_solver(solver);
  Engine es(small, &ctx);
  es.set_solver(solver);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(eb.dc_operating_point(), ref_big) << "round " << round;
    EXPECT_EQ(es.dc_operating_point(), ref_small) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Solvers, PooledContextAlternating,
    ::testing::Values(LinearSolver::kDense, LinearSolver::kSparse),
    [](const ::testing::TestParamInfo<LinearSolver>& info) {
      return info.param == LinearSolver::kSparse ? "Sparse" : "Dense";
    });

TEST(SparseContext, WarmSparseTransientIsAllocationFree) {
  // Same contract the dense path already honors: after one warm-up run has
  // sized the pattern, the factorization, and every workspace, repeated
  // identical transients must not touch the heap through any context
  // buffer.
  Circuit c = switching_cell_circuit(300.0);
  SolveContext ctx;
  Engine engine(c, &ctx);
  engine.set_solver(LinearSolver::kSparse);
  TranOptions opt;
  opt.t_stop = 200e-12;
  engine.transient(opt);  // warm-up: analyze, factor, size workspaces
  const std::uint64_t warm = ctx.allocations();
  EXPECT_GT(warm, 0u);
  engine.transient(opt);
  engine.transient(opt);
  EXPECT_EQ(ctx.allocations(), warm);
}

TEST(SparseContext, SymbolicAnalysesScaleWithTopologiesNotIterations) {
  // Two engines sharing one context, each re-solved repeatedly: the
  // symbolic analysis runs once per (engine, context ownership change) —
  // O(topologies) — while numeric refactorizations track NR iterations.
  auto& symbolic = obs::registry().counter("spice.symbolic_analyses");
  auto& refactors = obs::registry().counter("spice.numeric_refactors");

  Circuit c = switching_cell_circuit(300.0);
  SolveContext ctx;
  Engine engine(c, &ctx);
  engine.set_solver(LinearSolver::kSparse);

  const auto sym0 = symbolic.value();
  const auto ref0 = refactors.value();
  engine.dc_operating_point();
  const auto sym_first = symbolic.value() - sym0;
  EXPECT_EQ(sym_first, 1u);

  for (int i = 0; i < 5; ++i) engine.dc_operating_point();
  // Same engine, same context: the pattern is owned, no re-analysis.
  EXPECT_EQ(symbolic.value() - sym0, 1u);
  // Every NR iteration past each solve's first factorization refactors.
  EXPECT_GT(refactors.value(), ref0);
}

}  // namespace
}  // namespace cryo::spice
