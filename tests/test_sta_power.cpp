#include <gtest/gtest.h>

#include "charlib/characterizer.hpp"
#include "power/power.hpp"
#include "sram/sram.hpp"
#include "sta/sta.hpp"
#include "common/units.hpp"
#include "synth/synth.hpp"

namespace cryo {
namespace {

// Shared fast library (small grid) with the cells the mini netlists use.
const charlib::Library& mini_lib() {
  static const charlib::Library lib = [] {
    charlib::CharOptions opt;
    opt.temperature = 300.0;
    opt.slews = {2e-12, 8e-12, 32e-12};
    opt.loads = {0.5e-15, 2e-15, 8e-15};
    opt.characterize_setup_hold = true;
    charlib::Characterizer ch(device::golden_nmos(), device::golden_pmos(),
                              opt);
    cells::CatalogOptions copt;
    copt.only_bases = {"INV", "BUF", "NAND2", "DFF"};
    copt.drives = {1, 2, 4, 8};
    copt.include_slvt = false;
    return ch.characterize_all(cells::standard_cells(copt), "mini_sta");
  }();
  return lib;
}

sram::SramModel model300() {
  return sram::SramModel(device::golden_nmos(), device::golden_pmos(),
                         300.0);
}

// Flop -> inverter chain -> flop.
netlist::Netlist chain_netlist(int length) {
  netlist::Netlist nl("chain");
  const auto clk = nl.add_net("clk");
  nl.add_input(clk);
  nl.set_clock(clk);
  const auto d0 = nl.add_net("d0");
  nl.add_input(d0);
  const auto q0 = nl.add_net("q0");
  nl.add_gate("launch", "DFF_X1", {{"D", d0}, {"CLK", clk}, {"Q", q0}});
  netlist::NetId prev = q0;
  for (int i = 0; i < length; ++i) {
    const auto next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("inv" + std::to_string(i), "INV_X1",
                {{"A", prev}, {"Y", next}});
    prev = next;
  }
  const auto qf = nl.add_net("qf");
  nl.add_gate("capture", "DFF_X1", {{"D", prev}, {"CLK", clk}, {"Q", qf}});
  nl.add_output(qf);
  return nl;
}

TEST(Sta, ChainDelayGrowsLinearly) {
  const auto nl4 = chain_netlist(4);
  const auto nl12 = chain_netlist(12);
  const auto sm = model300();
  const double d4 =
      sta::StaEngine(nl4, mini_lib(), sm).run().critical_delay;
  const double d12 =
      sta::StaEngine(nl12, mini_lib(), sm).run().critical_delay;
  EXPECT_GT(d12, d4 * 1.8);
  EXPECT_LT(d12, d4 * 3.5);
}

TEST(Sta, ReportsCriticalPathSteps) {
  const auto nl = chain_netlist(6);
  const auto sm = model300();
  const auto report = sta::StaEngine(nl, mini_lib(), sm).run();
  EXPECT_EQ(report.critical_endpoint, "capture/D");
  // Launch flop + 6 inverters on the path.
  EXPECT_GE(report.critical_path.size(), 7u);
  EXPECT_GT(report.fmax, 1e8);
  // Arrivals strictly increase along the path.
  for (std::size_t i = 1; i < report.critical_path.size(); ++i)
    EXPECT_GT(report.critical_path[i].arrival,
              report.critical_path[i - 1].arrival);
}

TEST(Sta, DetectsCombinationalLoop) {
  netlist::Netlist nl("loop");
  const auto a = nl.add_net("a"), b = nl.add_net("b");
  nl.add_gate("i1", "INV_X1", {{"A", a}, {"Y", b}});
  nl.add_gate("i2", "INV_X1", {{"A", b}, {"Y", a}});
  const auto sm = model300();
  sta::StaEngine engine(nl, mini_lib(), sm);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Sta, HoldSlackReported) {
  const auto nl = chain_netlist(2);
  const auto sm = model300();
  const auto report = sta::StaEngine(nl, mini_lib(), sm).run();
  // Short path exists but the flop hold time is small; slack is finite.
  EXPECT_TRUE(report.has_hold_endpoints);
  EXPECT_LT(report.worst_hold_slack, 1e-9);
  EXPECT_GT(report.worst_hold_slack, -50e-12);
}

TEST(Sta, UndrivenConeIsNotALoop) {
  // A cone rooted at a gate with an unconnected input pin: the root pops
  // with no timeable arc (output stays unconstrained), and its sinks must
  // still be released so the cone drains from the ready queue — the old
  // sink-release skip reported it as a spurious combinational loop. The
  // driven flop-to-flop path must still be timed normally.
  const auto sm = model300();
  netlist::Netlist nl = chain_netlist(2);
  const auto u1 = nl.add_net("u1");
  const auto u2 = nl.add_net("u2");
  nl.add_gate("dang1", "INV_X1", {{"Y", u1}});  // input pin unconnected
  nl.add_gate("dang2", "INV_X1", {{"A", u1}, {"Y", u2}});
  nl.add_output(u2);

  sta::StaEngine engine(nl, mini_lib(), sm);
  sta::TimingReport report;
  ASSERT_NO_THROW(report = engine.run());
  // The driven path still produces a critical path ending at the capture
  // flop; the dangling cone contributes no endpoint.
  EXPECT_EQ(report.critical_endpoint, "capture/D");
  EXPECT_GT(report.critical_delay, 0.0);
}

TEST(Sta, NoHoldEndpointsNormalizesSlack) {
  // Every endpoint unconstrained (a PO fed only by a dangling cone): no
  // hold check ever happens, and the report must say so explicitly
  // instead of leaking the +1e30 sentinel into worst_hold_slack.
  netlist::Netlist nl("dangling");
  const auto y = nl.add_net("y");
  nl.add_gate("dang", "INV_X1", {{"Y", y}});  // input pin unconnected
  nl.add_output(y);
  const auto sm = model300();
  const auto report = sta::StaEngine(nl, mini_lib(), sm).run();
  EXPECT_FALSE(report.has_hold_endpoints);
  EXPECT_EQ(report.worst_hold_slack, 0.0);
  EXPECT_EQ(report.endpoint_count, 0u);
}

// --- Synthesis ---------------------------------------------------------------

TEST(Synth, BuffersHighFanout) {
  netlist::Netlist nl("fanout");
  const auto clk = nl.add_net("clk");
  nl.set_clock(clk);
  const auto d = nl.add_net("d");
  nl.add_input(d);
  const auto hub = nl.add_net("hub");
  nl.add_gate("drv", "INV_X1", {{"A", d}, {"Y", hub}});
  for (int i = 0; i < 64; ++i) {
    const auto y = nl.add_net("y" + std::to_string(i));
    nl.add_gate("sink" + std::to_string(i), "INV_X1",
                {{"A", hub}, {"Y", y}});
  }
  const auto report = synth::optimize(nl, mini_lib());
  EXPECT_GT(report.buffers_inserted, 4u);
  // After buffering, no net drives more than max_fanout gate pins.
  std::map<netlist::NetId, int> fanout;
  for (const auto& g : nl.gates())
    for (const auto& [pin, net] : g.conns)
      if (pin == "A" || pin == "D") ++fanout[net];
  for (const auto& [net, count] : fanout)
    EXPECT_LE(count, 10) << nl.net_name(net);
}

TEST(Synth, SizingUpsizesLoadedDrivers) {
  netlist::Netlist nl("sizing");
  const auto d = nl.add_net("d");
  nl.add_input(d);
  const auto mid = nl.add_net("mid");
  nl.add_gate("drv", "INV_X1", {{"A", d}, {"Y", mid}});
  // Nine sinks is under the fanout limit but a heavy capacitive load.
  for (int i = 0; i < 9; ++i) {
    const auto y = nl.add_net("y" + std::to_string(i));
    nl.add_gate("s" + std::to_string(i), "INV_X8", {{"A", mid}, {"Y", y}});
  }
  synth::optimize(nl, mini_lib());
  EXPECT_NE(nl.gates()[0].cell, "INV_X1");  // upsized
}

TEST(Synth, ExpressionMapping) {
  netlist::Netlist nl("expr");
  const auto y = synth::map_expression(nl, "(a & b) | !c", "m");
  EXPECT_GT(nl.gates().size(), 2u);
  EXPECT_NE(y, netlist::kNoNet);
  EXPECT_THROW(synth::map_expression(nl, "(a & b", "m"),
               std::invalid_argument);
  EXPECT_THROW(synth::map_expression(nl, "a b", "m"), std::invalid_argument);
}

// --- Power --------------------------------------------------------------------

TEST(Power, LeakageSumsCellLeakage) {
  const auto nl = chain_netlist(4);
  const auto sm = model300();
  power::PowerAnalyzer analyzer(nl, mini_lib(), sm);
  power::ActivityProfile profile;
  profile.clock_frequency = 1e9;
  const auto report = analyzer.analyze(profile);
  double expected = 0.0;
  for (const auto& gate : nl.gates())
    expected += mini_lib().at(gate.cell).leakage_avg;
  EXPECT_NEAR(report.leakage_logic, expected, expected * 1e-9);
}

TEST(Power, DynamicScalesWithFrequencyAndActivity) {
  const auto nl = chain_netlist(8);
  const auto sm = model300();
  power::PowerAnalyzer analyzer(nl, mini_lib(), sm);
  power::ActivityProfile slow;
  slow.clock_frequency = 1e9;
  slow.default_activity = 0.1;
  power::ActivityProfile fast = slow;
  fast.clock_frequency = 2e9;
  power::ActivityProfile busy = slow;
  busy.default_activity = 0.2;
  const double p_slow = analyzer.analyze(slow).dynamic_logic;
  const double p_fast = analyzer.analyze(fast).dynamic_logic;
  const double p_busy = analyzer.analyze(busy).dynamic_logic;
  EXPECT_NEAR(p_fast / p_slow, 2.0, 0.01);
  EXPECT_GT(p_busy, p_slow * 1.3);
}

TEST(Power, SramAccessEnergyCounted) {
  netlist::Netlist nl("mem");
  const auto clk = nl.add_net("clk");
  nl.set_clock(clk);
  netlist::SramMacro m;
  m.name = "l1d_data0";
  m.rows = 512;
  m.cols = 64;
  m.clock = clk;
  nl.add_sram(m);
  const auto sm = model300();
  power::PowerAnalyzer analyzer(nl, mini_lib(), sm);
  power::ActivityProfile idle;
  idle.clock_frequency = 1e9;
  power::ActivityProfile busy = idle;
  busy.sram_reads_per_cycle = {{"l1d", 0.5}};
  EXPECT_GT(analyzer.analyze(busy).dynamic_sram,
            analyzer.analyze(idle).dynamic_sram);
  EXPECT_GT(analyzer.analyze(idle).leakage_sram, 0.0);
}

// --- SRAM macro model -------------------------------------------------------

TEST(Sram, LeakageCollapsesAtCryo) {
  const auto hot = model300();
  const sram::SramModel cold(device::golden_nmos(), device::golden_pmos(),
                             10.0);
  // Paper Fig. 6: 99.76 % leakage reduction.
  EXPECT_GT(hot.leakage_per_bit() / cold.leakage_per_bit(), 100.0);
}

TEST(Sram, SoCLeakageBudgetMatchesPaper) {
  // 581 KB at 300 K leaked 193 mW in the paper; at 10 K it fit easily in
  // the 100 mW cooling budget.
  const double bits = 581.0 * 8192.0;
  const auto hot = model300();
  const sram::SramModel cold(device::golden_nmos(), device::golden_pmos(),
                             10.0);
  const double p_hot = hot.leakage_per_bit() * bits;
  const double p_cold = cold.leakage_per_bit() * bits;
  EXPECT_NEAR(p_hot, 193e-3, 60e-3);
  EXPECT_LT(p_cold, 5e-3);
  EXPECT_GT(p_hot, kCoolingBudget10K);  // infeasible hot
  EXPECT_LT(p_cold, kCoolingBudget10K); // feasible cold
}

TEST(Sram, AccessTimeScalesWithRows) {
  const auto m = model300();
  const double small = m.timing({512, 64}).access_time;
  const double large = m.timing({4096, 64}).access_time;
  EXPECT_GT(large, small * 1.5);
  EXPECT_GT(m.timing({512, 64}).min_cycle, small);
}

TEST(Sram, TimingShiftsWithTemperatureLikeLogic) {
  const auto hot = model300();
  const sram::SramModel cold(device::golden_nmos(), device::golden_pmos(),
                             10.0);
  const double ratio = cold.timing({512, 64}).access_time /
                       hot.timing({512, 64}).access_time;
  EXPECT_NEAR(ratio, 1.0, 0.2);  // only slightly different, like the cells
}

TEST(Sram, EnergiesPositiveAndOrdered) {
  const auto m = model300();
  const auto p = m.power({512, 64});
  EXPECT_GT(p.read_energy, 0.0);
  EXPECT_GT(p.write_energy, 0.0);
  EXPECT_GT(p.leakage, 0.0);
  // Larger macros cost more per access.
  EXPECT_GT(m.power({4096, 64}).read_energy, p.read_energy);
}

}  // namespace
}  // namespace cryo
