// cryo::sweep engine + core::Corner + core::FlowError tests.
//
// The determinism tests load the committed full-catalog Liberty artifacts
// (like test_flow); the cache/eviction and failure-isolation tests use a
// tiny INV-only catalog in a scratch store so characterization stays in
// the millisecond range.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "core/corner.hpp"
#include "core/error.hpp"
#include "core/flow.hpp"
#include "liberty/liberty.hpp"
#include "obs/metrics.hpp"
#include "sweep/sweep.hpp"

namespace cryo::sweep {
namespace {

using core::Corner;
using core::CryoSocFlow;
using core::FlowConfig;
using core::FlowError;

// ---- Corner value semantics ---------------------------------------------

TEST(Corner, KeyLabelSlugAndFactories) {
  const Corner room = Corner::room();
  EXPECT_DOUBLE_EQ(room.vdd, 0.7);
  EXPECT_DOUBLE_EQ(room.temperature, 300.0);
  EXPECT_EQ(room.name, "300k");
  EXPECT_EQ(room.key(), "v0.7_t300");
  EXPECT_EQ(room.label(), "300k");

  const Corner cryo = Corner::cryo(0.65);
  EXPECT_EQ(cryo.key(), "v0.65_t10");

  // Unnamed corners label themselves with the key; the slug is
  // filename-safe ('.' -> 'p').
  const Corner bare{0.65, 300.0, ""};
  EXPECT_EQ(bare.label(), "v0.65_t300");
  EXPECT_EQ(bare.slug(), "v0p65_t300");

  // Shortest round-trip formatting, not "0.6999999...".
  const Corner v{0.7 + 0.0, 77.0, ""};
  EXPECT_EQ(v.key(), "v0.7_t77");
}

TEST(Corner, IdentityIsVddAndTemperatureOnly) {
  const Corner a{0.7, 300.0, "signoff"};
  const Corner b{0.7, 300.0, "tt_corner"};
  const Corner c{0.7, 10.0, "signoff"};
  EXPECT_EQ(a, b);  // names differ, identity doesn't
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Corner>{}(a), std::hash<Corner>{}(b));

  std::unordered_set<Corner> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);

  // Ordering: by temperature, then vdd.
  EXPECT_LT(c, a);
  EXPECT_LT((Corner{0.6, 300.0, ""}), (Corner{0.7, 300.0, ""}));
}

// ---- FlowError ----------------------------------------------------------

TEST(FlowError, CarriesStageCornerAndPath) {
  const FlowError plain("characterize", "/tmp/x.lib", "spice diverged");
  EXPECT_EQ(plain.stage(), "characterize");
  EXPECT_EQ(plain.path(), "/tmp/x.lib");
  EXPECT_FALSE(plain.corner().has_value());
  EXPECT_NE(std::string(plain.what()).find("characterize"),
            std::string::npos);
  EXPECT_NE(std::string(plain.what()).find("/tmp/x.lib"), std::string::npos);

  const auto bound =
      FlowError::at_corner(plain, Corner::cryo(), "artifact-load");
  EXPECT_EQ(bound.stage(), "artifact-load");
  ASSERT_TRUE(bound.corner().has_value());
  EXPECT_DOUBLE_EQ(bound.corner()->temperature, 10.0);
  EXPECT_NE(std::string(bound.what()).find("10k"), std::string::npos);
}

TEST(FlowError, LibertyIoThrowsStructured) {
  try {
    (void)liberty::read_file("/nonexistent/cryosoc/missing.lib");
    FAIL() << "read_file should have thrown";
  } catch (const FlowError& e) {
    EXPECT_EQ(e.stage(), "liberty-io");
    EXPECT_EQ(e.path(), "/nonexistent/cryosoc/missing.lib");
  }
  // FlowError remains a std::runtime_error for legacy catch sites.
  EXPECT_THROW((void)liberty::read_file("/nonexistent/cryosoc/missing.lib"),
               std::runtime_error);
}

// ---- Sweep determinism vs the sequential flow ---------------------------

FlowConfig full_catalog_config() {
  FlowConfig config;
  config.calibrate_devices = false;
  return config;
}

void expect_same_timing(const sta::TimingReport& a,
                        const sta::TimingReport& b) {
  EXPECT_DOUBLE_EQ(a.critical_delay, b.critical_delay);
  EXPECT_DOUBLE_EQ(a.fmax, b.fmax);
  EXPECT_DOUBLE_EQ(a.worst_hold_slack, b.worst_hold_slack);
  EXPECT_EQ(a.has_hold_endpoints, b.has_hold_endpoints);
  EXPECT_EQ(a.endpoint_count, b.endpoint_count);
  EXPECT_EQ(a.critical_endpoint, b.critical_endpoint);
  ASSERT_EQ(a.critical_path.size(), b.critical_path.size());
  for (std::size_t i = 0; i < a.critical_path.size(); ++i) {
    EXPECT_EQ(a.critical_path[i].instance, b.critical_path[i].instance);
    EXPECT_EQ(a.critical_path[i].cell, b.critical_path[i].cell);
    EXPECT_DOUBLE_EQ(a.critical_path[i].delay, b.critical_path[i].delay);
    EXPECT_DOUBLE_EQ(a.critical_path[i].arrival,
                     b.critical_path[i].arrival);
  }
}

TEST(Sweep, TwoCornerSweepMatchesSequentialAtAnyThreadCount) {
  // Sequential reference: the paper's 300 K / 10 K signoff, one corner at
  // a time.
  CryoSocFlow seq(full_catalog_config());
  const auto t300 = seq.timing(seq.corner(300.0));
  const auto t10 = seq.timing(seq.corner(10.0));

  for (int threads : {1, 4}) {
    CryoSocFlow flow(full_catalog_config());
    SweepRequest request;
    request.corners = {flow.corner(300.0), flow.corner(10.0)};
    request.run_timing = true;
    request.threads = threads;
    const auto report = run_sweep(flow, request);
    ASSERT_EQ(report.corners.size(), 2u);
    EXPECT_EQ(report.failed, 0u);
    ASSERT_TRUE(report.corners[0].ok) << report.corners[0].error;
    ASSERT_TRUE(report.corners[1].ok) << report.corners[1].error;
    ASSERT_TRUE(report.corners[0].timing.has_value());
    ASSERT_TRUE(report.corners[1].timing.has_value());
    expect_same_timing(*report.corners[0].timing, t300);
    expect_same_timing(*report.corners[1].timing, t10);

    // Derived scalars: 10 K is the slow corner (Table 1), and the fmax
    // curve is ascending in temperature.
    ASSERT_TRUE(report.worst_corner.has_value());
    EXPECT_EQ(*report.worst_corner, 1u);
    ASSERT_EQ(report.fmax_vs_temperature.size(), 2u);
    EXPECT_DOUBLE_EQ(report.fmax_vs_temperature[0].first, 10.0);
    EXPECT_DOUBLE_EQ(report.fmax_vs_temperature[1].first, 300.0);
  }
}

TEST(Sweep, JsonReportCarriesSchema) {
  CryoSocFlow flow(full_catalog_config());
  SweepRequest request;
  request.corners = {flow.corner(300.0)};
  const auto report = run_sweep(flow, request);
  const std::string json = to_json(report).dump(2);
  EXPECT_NE(json.find("\"schema\": \"cryosoc-sweep-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"corners\""), std::string::npos);
  EXPECT_NE(json.find("\"fmax_hz\""), std::string::npos);
}

TEST(Sweep, EmptyGridThrows) {
  CryoSocFlow flow(full_catalog_config());
  EXPECT_THROW(run_sweep(flow, SweepRequest{}), std::invalid_argument);
}

TEST(Sweep, RoundTrippedCornerSharesItsTwinsCurvePoint) {
  // Regression: the fmax-vs-T curve used exact double == on temperature,
  // so a corner whose temperature round-tripped through a %.6g text form
  // (Liberty nom_temperature, a serve client) forked its own grid point.
  // Anchored interpolation keeps the odd temperatures characterization-free.
  auto config = full_catalog_config();
  config.interp_anchor_temps = {10.0, 300.0};
  CryoSocFlow flow(config);

  const double exact = 154.321987;  // %.6g renders "154.322"
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", exact);
  const double round_tripped = std::strtod(buf, nullptr);
  ASSERT_NE(exact, round_tripped);
  ASSERT_TRUE(core::temperature_close(exact, round_tripped));

  auto& runs = obs::registry().counter("charlib.runs");
  const auto runs0 = runs.value();

  SweepRequest request;
  request.corners = {flow.corner(exact), flow.corner(round_tripped)};
  request.run_timing = true;
  const auto report = run_sweep(flow, request);

  ASSERT_EQ(report.corners.size(), 2u);
  EXPECT_EQ(report.failed, 0u);
  // One physical temperature -> one curve point, not two.
  ASSERT_EQ(report.fmax_vs_temperature.size(), 1u);
  EXPECT_DOUBLE_EQ(report.fmax_vs_temperature[0].first, exact);
  // Both corners rode the committed anchors; nothing characterized.
  EXPECT_EQ(runs.value(), runs0);
}

TEST(Sweep, CoolingVerdictNamesTheFeasibilityOutcome) {
  // The crossover optional alone could not distinguish "fits everywhere"
  // from "infeasible even at the coldest corner" — both were silence.
  CryoSocFlow flow(full_catalog_config());
  SweepRequest request;
  request.corners = {flow.corner(10.0), flow.corner(300.0)};
  request.run_timing = true;
  request.run_power = true;
  request.run_feasibility = true;

  // Baseline run to learn the two power totals.
  request.cooling_budget_w = 1.0;
  const auto probe = run_sweep(flow, request);
  ASSERT_EQ(probe.failed, 0u);
  ASSERT_TRUE(probe.corners[0].power && probe.corners[1].power);
  const double p_cold = probe.corners[0].power->total();
  const double p_warm = probe.corners[1].power->total();
  ASSERT_LT(p_cold, p_warm);  // cooling saves power (the paper's premise)

  // Budget between the two totals: a crossover exists and is bracketed.
  request.cooling_budget_w = 0.5 * (p_cold + p_warm);
  const auto mid = run_sweep(flow, request);
  EXPECT_EQ(mid.cooling_verdict, serve::CoolingVerdict::kCrossover);
  ASSERT_TRUE(mid.cooling_crossover_k.has_value());
  EXPECT_GE(*mid.cooling_crossover_k, 10.0);
  EXPECT_LE(*mid.cooling_crossover_k, 300.0);

  // Budget above every total: fits everywhere, no crossover.
  request.cooling_budget_w = 2.0 * p_warm;
  const auto roomy = run_sweep(flow, request);
  EXPECT_EQ(roomy.cooling_verdict, serve::CoolingVerdict::kFitsEverywhere);
  EXPECT_FALSE(roomy.cooling_crossover_k.has_value());

  // Budget below every total: infeasible even at the coldest corner —
  // previously indistinguishable from the case above.
  request.cooling_budget_w = 0.5 * p_cold;
  const auto tight = run_sweep(flow, request);
  EXPECT_EQ(tight.cooling_verdict,
            serve::CoolingVerdict::kInfeasibleEverywhere);
  EXPECT_FALSE(tight.cooling_crossover_k.has_value());

  // The verdict rides the cryosoc-sweep-v1 document.
  const std::string json = to_json(tight).dump(2);
  EXPECT_NE(json.find("\"cooling_verdict\": \"infeasible_everywhere\""),
            std::string::npos);

  // A sweep without power results reports not_evaluated.
  SweepRequest timing_only;
  timing_only.corners = {flow.corner(300.0)};
  const auto no_power = run_sweep(flow, timing_only);
  EXPECT_EQ(no_power.cooling_verdict,
            serve::CoolingVerdict::kNotEvaluated);
}

// ---- Corner cache: eviction + reload ------------------------------------

FlowConfig tiny_config(const std::string& lib_dir) {
  FlowConfig config;
  config.calibrate_devices = false;
  config.lib_dir = lib_dir;
  config.catalog.only_bases = {"INV"};
  config.catalog.drives = {1};
  config.catalog.extra_drives_common = {};
  config.catalog.include_slvt = false;
  return config;
}

TEST(Sweep, CornerCacheEvictsLruAndHeldEntriesSurvive) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cryosoc_sweep_lru";
  fs::remove_all(dir);

  auto config = tiny_config(dir.string());
  config.corner_cache_capacity = 2;
  CryoSocFlow flow(config);

  auto& hits = obs::registry().counter("sweep.corner_cache.hit");
  auto& misses = obs::registry().counter("sweep.corner_cache.miss");
  auto& evicts = obs::registry().counter("sweep.corner_cache.evict");
  const auto hit0 = hits.value();
  const auto miss0 = misses.value();
  const auto evict0 = evicts.value();

  const auto lib300 = flow.library(flow.corner(300.0));  // miss: build
  (void)flow.library(flow.corner(10.0));                 // miss: build
  EXPECT_EQ(misses.value() - miss0, 2u);
  EXPECT_EQ(evicts.value() - evict0, 0u);

  // Third corner overflows capacity 2: the LRU entry (300 K) is evicted,
  // but the held shared_ptr keeps its library alive and intact.
  (void)flow.library(flow.corner(77.0));
  EXPECT_EQ(evicts.value() - evict0, 1u);
  EXPECT_EQ(lib300->name, "cryo5_300k");
  EXPECT_FALSE(lib300->cells.empty());
  EXPECT_DOUBLE_EQ(lib300->temperature, 300.0);

  // Touching the evicted corner is a miss again; the artifact store makes
  // the rebuild a disk load, not a re-characterization.
  auto& charlib_runs = obs::registry().counter("charlib.runs");
  const auto runs_before = charlib_runs.value();
  const auto reloaded = flow.library(flow.corner(300.0));
  EXPECT_EQ(misses.value() - miss0, 4u);
  EXPECT_EQ(charlib_runs.value(), runs_before);  // loaded, not rebuilt
  EXPECT_EQ(reloaded->name, "cryo5_300k");
  EXPECT_NE(reloaded.get(), lib300.get());  // distinct resident copy

  // A resident corner is a hit and must not evict anything.
  (void)flow.library(flow.corner(300.0));
  EXPECT_GE(hits.value() - hit0, 1u);
  fs::remove_all(dir);
}

// ---- Failure isolation --------------------------------------------------

TEST(Sweep, QuarantinedCornerSurfacesAsPerCornerError) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cryosoc_sweep_quar";
  fs::remove_all(dir);

  // The hostile cell from the quarantine test: its only arc measures a
  // node nothing drives, so characterization quarantines it at every
  // corner.
  cells::CellDef broken = cells::make_cell("INV", 1, cells::VtFlavor::kLvt);
  broken.name = "INV_BROKEN";
  broken.arcs.resize(1);
  broken.arcs[0].output = "Z";
  broken.arcs[0].input_rise = true;
  broken.arcs[0].output_rise = false;

  auto config = tiny_config(dir.string());
  config.cells_override = {
      {cells::make_cell("INV", 1, cells::VtFlavor::kLvt), broken}};
  CryoSocFlow flow(config);

  SweepRequest request;
  request.corners = {flow.corner(300.0), flow.corner(10.0)};
  request.run_timing = false;
  request.run_leakage = true;

  // run_sweep completes instead of throwing; each degraded corner carries
  // its own quarantine error.
  const auto report = run_sweep(flow, request);
  ASSERT_EQ(report.corners.size(), 2u);
  EXPECT_EQ(report.failed, 2u);
  for (const auto& r : report.corners) {
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_stage, "quarantine");
    EXPECT_NE(r.error.find("INV_BROKEN"), std::string::npos) << r.error;
  }
  fs::remove_all(dir);
}

TEST(Sweep, CorruptArtifactFailsItsCornerNotSiblings) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "cryosoc_sweep_bad";
  fs::remove_all(dir);
  const auto config = tiny_config(dir.string());

  // Build both corners' artifacts, then corrupt the 10 K library body
  // while keeping its (still-matching) manifest: a fresh fingerprint whose
  // content cannot load is a corrupt store entry, surfaced as a per-corner
  // artifact-load error instead of a silent re-characterization.
  {
    CryoSocFlow warmup(config);
    (void)warmup.library(warmup.corner(300.0));
    (void)warmup.library(warmup.corner(10.0));
  }
  std::ofstream(dir / "cryo5_10k.lib") << "not a liberty file\n";

  CryoSocFlow flow(config);
  SweepRequest request;
  request.corners = {flow.corner(300.0), flow.corner(10.0)};
  request.run_timing = false;
  request.run_leakage = true;
  const auto report = run_sweep(flow, request);

  ASSERT_EQ(report.corners.size(), 2u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(report.corners[0].ok) << report.corners[0].error;
  EXPECT_GT(report.corners[0].library_leakage_w, 0.0);
  EXPECT_FALSE(report.corners[1].ok);
  EXPECT_EQ(report.corners[1].error_stage, "artifact-load");
  EXPECT_NE(report.corners[1].error.find("cryo5_10k.lib"),
            std::string::npos)
      << report.corners[1].error;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cryo::sweep
