#include <gtest/gtest.h>

#include "riscv/workloads.hpp"
#include "thermal/thermal.hpp"

namespace cryo::thermal {
namespace {

TEST(StageModel, SteadyStateLinearInPower) {
  StageModel stage;
  const double t0 = stage.steady_temperature(0.0);
  EXPECT_DOUBLE_EQ(t0, stage.config().base_temperature);
  const double t1 = stage.steady_temperature(10e-3);
  const double t2 = stage.steady_temperature(20e-3);
  EXPECT_NEAR(t2 - t1, t1 - t0, 1e-12);
}

TEST(StageModel, ContinuousLimitRespectsBothBounds) {
  StageModel stage;
  const double p = stage.max_continuous_power();
  EXPECT_LE(p, stage.config().cooling_power + 1e-12);
  EXPECT_LE(stage.steady_temperature(p),
            stage.config().max_temperature + 1e-9);
  // Temperature-limited configuration.
  StageConfig tight;
  tight.max_temperature = 10.05;
  const StageModel limited(tight);
  EXPECT_LT(limited.max_continuous_power(), tight.cooling_power);
}

TEST(StageModel, RejectsNonPhysicalConfig) {
  StageConfig bad;
  bad.capacitance = 0.0;
  EXPECT_THROW(StageModel{bad}, std::invalid_argument);
}

TEST(StageModel, ConstantScheduleConvergesToSteadyState) {
  StageModel stage;
  BurstSchedule constant{30e-3, 30e-3, 10e-3, 10e-3};
  const auto trace = stage.simulate(constant, 100);
  EXPECT_NEAR(trace.temperature.back(), stage.steady_temperature(30e-3),
              0.01);
  EXPECT_LT(trace.steady_ripple, 1e-3);
}

TEST(StageModel, BurstPeakBelowSteadyOfBurstPower) {
  StageModel stage;
  // Bursting 100 mW for a tenth of tau cannot come close to the 100 mW
  // steady state.
  BurstSchedule s{100e-3, 1e-3, stage.time_constant() / 10.0,
                  stage.time_constant()};
  const auto trace = stage.simulate(s, 60);
  EXPECT_LT(trace.peak, stage.steady_temperature(100e-3));
  EXPECT_GT(trace.peak, stage.config().base_temperature);
}

TEST(StageModel, ShorterBurstsAllowMorePower) {
  StageModel stage;
  const double idle = 2e-3;
  const double p_short = stage.max_burst_power(0.5e-3, 20e-3, idle);
  const double p_long = stage.max_burst_power(5e-3, 20e-3, idle);
  EXPECT_GT(p_short, p_long * 1.5);
  // Both sustainable schedules stay inside the limit when re-simulated.
  for (const auto& [pb, tb] : {std::pair{p_short, 0.5e-3},
                               std::pair{p_long, 5e-3}}) {
    BurstSchedule s{pb * 0.999, idle, tb, 20e-3};
    EXPECT_TRUE(stage.simulate(s, 60).within_limit);
  }
}

TEST(StageModel, AveragePowerAccounting) {
  BurstSchedule s{100e-3, 0.0, 1e-3, 3e-3};
  EXPECT_NEAR(s.duty(), 0.25, 1e-12);
  EXPECT_NEAR(s.average_power(), 25e-3, 1e-12);
}

TEST(StageModel, EmptyScheduleRejected) {
  StageModel stage;
  EXPECT_THROW(stage.simulate(BurstSchedule{}, 10), std::invalid_argument);
}

}  // namespace
}  // namespace cryo::thermal

namespace cryo::riscv {
namespace {

TEST(Workloads, DhrystoneLikeRunsAndHalts) {
  Cpu cpu;
  const auto perf = run_dhrystone_like(cpu, 20);
  EXPECT_GT(perf.instructions, 5000u);
  EXPECT_GT(perf.ipc(), 0.3);
  EXPECT_LT(perf.ipc(), 1.0);
}

TEST(Workloads, InstructionMixIsDhrystoneFlavoured) {
  Cpu cpu;
  const auto perf = run_dhrystone_like(cpu, 50);
  const double n = static_cast<double>(perf.instructions);
  const double mem_frac =
      static_cast<double>(perf.loads + perf.stores) / n;
  const double branch_frac = static_cast<double>(perf.branches) / n;
  EXPECT_GT(mem_frac, 0.10);
  EXPECT_LT(mem_frac, 0.45);
  EXPECT_GT(branch_frac, 0.08);
  EXPECT_LT(branch_frac, 0.35);
  EXPECT_GT(perf.mul_ops, 0u);
}

TEST(Workloads, ScalesWithIterations) {
  Cpu a, b;
  const auto p1 = run_dhrystone_like(a, 10);
  const auto p4 = run_dhrystone_like(b, 40);
  EXPECT_NEAR(static_cast<double>(p4.instructions) /
                  static_cast<double>(p1.instructions),
              4.0, 0.5);
}

}  // namespace
}  // namespace cryo::riscv
